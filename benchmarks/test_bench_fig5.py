"""Benchmarks regenerating Figure 5 (index efficiency).

One bench per search strategy over the same query workload, plus the
local-vs-global modification timing. pytest-benchmark's comparison
output *is* the left panel of the figure: Linear should be slowest by
a wide margin and HG+ fastest among the hierarchical strategies.
"""

import pytest

from repro.core.modification import index_extent
from repro.experiments.fig5 import (
    _build_indexes,
    _query_points,
    modification_timings,
    run as run_fig5,
)


@pytest.fixture(scope="module")
def indexed(config, fleet):
    bbox = index_extent(fleet.dataset.bbox())
    linear, uniform, hierarchical, rtree = _build_indexes(fleet.dataset, bbox)
    queries = _query_points(fleet.dataset, config.signature_size, limit=60)
    return linear, uniform, hierarchical, rtree, queries


def test_bench_search_linear(benchmark, indexed):
    linear, _, _, _, queries = indexed
    benchmark(lambda: [linear.knn(q, 8) for q in queries])


def test_bench_search_uniform_grid(benchmark, indexed):
    _, uniform, _, _, queries = indexed
    benchmark(lambda: [uniform.knn(q, 8) for q in queries])


def test_bench_search_hg_top_down(benchmark, indexed):
    _, _, hierarchical, _, queries = indexed
    benchmark(
        lambda: [hierarchical.knn(q, 8, strategy="top_down") for q in queries]
    )


def test_bench_search_hg_bottom_up(benchmark, indexed):
    _, _, hierarchical, _, queries = indexed
    benchmark(
        lambda: [hierarchical.knn(q, 8, strategy="bottom_up") for q in queries]
    )


def test_bench_search_hg_bottom_up_down(benchmark, indexed):
    _, _, hierarchical, _, queries = indexed
    benchmark(
        lambda: [
            hierarchical.knn(q, 8, strategy="bottom_up_down") for q in queries
        ]
    )


def test_bench_search_rtree(benchmark, indexed):
    """Beyond the paper: STR R-tree over the same workload."""
    _, _, _, rtree, queries = indexed
    benchmark(lambda: [rtree.knn(q, 8) for q in queries])


def test_bench_modification_split(benchmark, config):
    """Right panel: global (inter) vs local (intra) modification time."""
    timings = benchmark.pedantic(
        lambda: modification_timings(config, sizes=(10,)), rounds=1, iterations=1
    )
    assert timings["Global"][0] > 0
    assert timings["Local"][0] > 0


def test_bench_fig5_end_to_end(benchmark, bench_timer, config):
    results = benchmark.pedantic(
        lambda: bench_timer(
            "fig5",
            "end_to_end_s",
            lambda: run_fig5(config, sizes=(10, 20)),
        ),
        rounds=1,
        iterations=1,
    )
    assert set(results["search"]) == {"Linear", "UG", "HGt", "HGb", "HG+", "RT"}
