"""Tests for EditableTrajectory: edit operations, costs, index sync."""

import pytest

from repro.core.edits import EditableTrajectory
from repro.geo.geometry import BBox
from repro.index.hierarchical import HierarchicalGridIndex
from repro.index.linear import LinearSegmentIndex
from repro.trajectory.model import Point, Trajectory


def traj(coords, object_id="t"):
    return Trajectory(
        object_id,
        [Point(float(x), float(y), 60.0 * i) for i, (x, y) in enumerate(coords)],
    )


def editable(coords, object_id="t", index=None):
    t = traj(coords, object_id)
    return EditableTrajectory(t, index if index is not None else LinearSegmentIndex())


class TestConstruction:
    def test_registers_all_segments(self):
        e = editable([(0, 0), (10, 0), (10, 10)])
        assert len(e) == 3
        assert len(e.index) == 2

    def test_empty_trajectory(self):
        e = editable([])
        assert len(e) == 0
        assert len(e.index) == 0
        assert e.to_trajectory().points == []

    def test_single_point(self):
        e = editable([(5, 5)])
        assert len(e) == 1
        assert len(e.index) == 0

    def test_original_not_mutated(self):
        t = traj([(0, 0), (10, 0)])
        e = EditableTrajectory(t, LinearSegmentIndex())
        e.append((99.0, 99.0))
        assert len(t) == 2

    def test_contains_and_occurrence_count(self):
        e = editable([(0, 0), (5, 5), (0, 0)])
        assert e.contains((0.0, 0.0))
        assert e.occurrence_count((0.0, 0.0)) == 2
        assert not e.contains((9.0, 9.0))


class TestInsertion:
    def test_insert_into_segment_cost_is_point_segment_distance(self):
        e = editable([(0, 0), (10, 0)])
        sid = e.index.knn((5, 3), 1)[0][0]
        assert e.insertion_cost((5, 3), sid) == pytest.approx(3.0)
        outcome = e.insert_into_segment((5.0, 3.0), sid)
        assert outcome.utility_loss == pytest.approx(3.0)
        assert outcome.delta_points == 1
        assert [p.coord for p in e.to_trajectory()] == [(0, 0), (5.0, 3.0), (10, 0)]

    def test_insert_updates_index(self):
        e = editable([(0, 0), (10, 0)])
        sid = e.index.knn((5, 3), 1)[0][0]
        e.insert_into_segment((5.0, 3.0), sid)
        assert len(e.index) == 2  # old segment replaced by two halves
        with pytest.raises(KeyError):
            e.index.segment(sid)

    def test_insert_interpolates_timestamp(self):
        e = editable([(0, 0), (10, 0)])
        sid = e.index.knn((5, 0), 1)[0][0]
        e.insert_into_segment((5.0, 0.0), sid)
        times = [p.t for p in e.to_trajectory()]
        assert times == sorted(times)
        assert times[1] == pytest.approx(30.0)

    def test_insert_unknown_segment_raises(self):
        e = editable([(0, 0), (10, 0)])
        with pytest.raises(KeyError):
            e.insert_into_segment((5.0, 0.0), 999)

    def test_append_to_empty(self):
        e = editable([])
        outcome = e.append((3.0, 3.0))
        assert outcome.utility_loss == 0.0
        assert len(e) == 1

    def test_append_extends_and_indexes(self):
        e = editable([(0, 0)])
        outcome = e.append((3.0, 4.0))
        assert outcome.utility_loss == pytest.approx(5.0)
        assert len(e.index) == 1
        assert len(e) == 2

    def test_total_utility_loss_accumulates(self):
        e = editable([(0, 0), (10, 0)])
        sid = e.index.knn((5, 3), 1)[0][0]
        e.insert_into_segment((5.0, 3.0), sid)
        assert e.total_utility_loss == pytest.approx(3.0)


class TestDeletion:
    def test_delete_middle_cost(self):
        # Deleting (5,3) from <(0,0),(5,3),(10,0)> costs dist to <(0,0),(10,0)> = 3.
        e = editable([(0, 0), (5, 3), (10, 0)])
        costs = e.occurrence_costs((5.0, 3.0))
        assert costs[0][0] == pytest.approx(3.0)
        outcome = e.delete_node(costs[0][1])
        assert outcome.utility_loss == pytest.approx(3.0)
        assert [p.coord for p in e.to_trajectory()] == [(0, 0), (10, 0)]
        assert len(e.index) == 1  # two segments merged into one

    def test_delete_head(self):
        e = editable([(0, 0), (3, 4), (10, 4)])
        nodes = e.occurrence_costs((0.0, 0.0))
        outcome = e.delete_node(nodes[0][1])
        assert outcome.utility_loss == pytest.approx(5.0)  # dist to neighbour
        assert [p.coord for p in e.to_trajectory()] == [(3, 4), (10, 4)]

    def test_delete_tail(self):
        e = editable([(0, 0), (3, 4)])
        nodes = e.occurrence_costs((3.0, 4.0))
        e.delete_node(nodes[0][1])
        assert [p.coord for p in e.to_trajectory()] == [(0, 0)]
        assert len(e.index) == 0

    def test_delete_only_point(self):
        e = editable([(5, 5)])
        nodes = e.occurrence_costs((5.0, 5.0))
        outcome = e.delete_node(nodes[0][1])
        assert outcome.utility_loss == 0.0
        assert len(e) == 0

    def test_delete_cheapest_picks_lowest_cost_occurrence(self):
        # (5,0) at index 1 is on the straight line (cost 0); at index 3
        # it forms a detour (cost > 0).
        e = editable([(0, 0), (5, 0), (10, 0), (5, 8), (20, 8)])
        before = e.occurrence_count((5.0, 0.0))
        outcome = e.delete_cheapest((5.0, 0.0), 1)
        assert before - e.occurrence_count((5.0, 0.0)) == 1
        assert outcome.utility_loss == pytest.approx(0.0, abs=1e-9)

    def test_delete_cheapest_stops_when_exhausted(self):
        e = editable([(0, 0), (5, 5), (0, 0)])
        outcome = e.delete_cheapest((0.0, 0.0), 10)
        assert outcome.delta_points == -2
        assert not e.contains((0.0, 0.0))

    def test_delete_all(self):
        e = editable([(0, 0), (5, 5), (0, 0), (7, 7), (0, 0)])
        e.delete_all((0.0, 0.0))
        assert [p.coord for p in e.to_trajectory()] == [(5, 5), (7, 7)]
        assert len(e.index) == 1

    def test_complete_deletion_cost_non_destructive(self):
        e = editable([(0, 0), (5, 3), (10, 0), (5, 3), (20, 0)])
        cost = e.complete_deletion_cost((5.0, 3.0))
        assert cost > 0
        assert e.occurrence_count((5.0, 3.0)) == 2  # unchanged


class TestSharedIndex:
    def test_owner_tagging(self):
        index = LinearSegmentIndex()
        editable([(0, 0), (10, 0)], object_id="a", index=index)
        editable([(100, 0), (110, 0)], object_id="b", index=index)
        assert len(index) == 2
        owners = {index.segment(sid).owner for sid, _ in index.knn((0, 0), 2)}
        assert owners == {"a", "b"}

    def test_detach_removes_only_own_segments(self):
        index = LinearSegmentIndex()
        a = editable([(0, 0), (10, 0), (20, 0)], object_id="a", index=index)
        editable([(100, 0), (110, 0)], object_id="b", index=index)
        a.detach()
        assert len(index) == 1
        assert index.knn((0, 0), 5)[0][0] is not None
        assert all(index.segment(sid).owner == "b" for sid, _ in index.knn((0, 0), 5))

    def test_works_with_hierarchical_index(self):
        index = HierarchicalGridIndex(BBox(-10, -10, 200, 200), levels=5)
        e = editable([(0, 0), (10, 0), (10, 10), (50, 50)], index=index)
        sid = index.knn((5, 2), 1, strategy="bottom_up_down")[0][0]
        e.insert_into_segment((5.0, 2.0), sid)
        e.delete_cheapest((5.0, 2.0), 1)
        result = e.to_trajectory()
        assert [p.coord for p in result] == [(0, 0), (10, 0), (10, 10), (50, 50)]
        assert len(index) == 3
