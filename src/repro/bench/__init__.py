"""Benchmark history, percentile statistics, and shift classification.

``BENCH_engine.json`` used to be a single overwritable snapshot —
nothing noticed a silent 20% regression. This package turns the
benchmark layer into tested infrastructure:

:mod:`repro.bench.record`
    The versioned, schema-validated :class:`BenchRecord` every bench
    session emits through (``benchmarks/conftest.py``), with the
    legacy flat snapshot kept as an import/export shape.
:mod:`repro.bench.history`
    The append-only ``BENCH_history.jsonl`` store, partitioned by
    ``(bench, scale)`` so paper-scale and smoke-scale runs never share
    a baseline.
:mod:`repro.bench.stats`
    Dependency-free percentile / median / IQR over the sliding
    baseline window.
:mod:`repro.bench.shift`
    Per-key classification into significant/minor improvement,
    stable, minor/significant degradation, with per-key direction
    metadata (``*_s`` lower-is-better, ``speedups.*``
    higher-is-better).

Front doors: the ``repro bench`` CLI (record / compare / report) and
the ``tools/check_bench.py`` CI gate, which fails on significant
degradation of any tracked key. See ``docs/benchmarks.md``.
"""

from repro.bench.history import (
    DEFAULT_HISTORY_FILENAME,
    DEFAULT_SMOKE_HISTORY_FILENAME,
    DEFAULT_WINDOW,
    BenchHistory,
    HistoryError,
)
from repro.bench.record import RECORD_VERSION, BenchRecord, BenchScale, RecordError
from repro.bench.shift import (
    DEFAULT_THRESHOLDS,
    BenchComparison,
    CrossScaleError,
    Direction,
    KeyShift,
    ShiftClass,
    Thresholds,
    classify_shift,
    compare_records,
    direction_for,
)
from repro.bench.stats import iqr, median, percentile, summarize

__all__ = [
    "BenchComparison",
    "BenchHistory",
    "BenchRecord",
    "BenchScale",
    "CrossScaleError",
    "DEFAULT_HISTORY_FILENAME",
    "DEFAULT_SMOKE_HISTORY_FILENAME",
    "DEFAULT_THRESHOLDS",
    "DEFAULT_WINDOW",
    "Direction",
    "HistoryError",
    "KeyShift",
    "RECORD_VERSION",
    "RecordError",
    "ShiftClass",
    "Thresholds",
    "classify_shift",
    "compare_records",
    "direction_for",
    "iqr",
    "median",
    "percentile",
    "summarize",
]
