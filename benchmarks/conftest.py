"""Shared fixtures for the benchmark suite.

All benches run at the smoke scale so the full suite finishes in
minutes (``REPRO_BENCH_SCALE=paper`` switches the engine bench to the
paper's 500x300 fleet); the experiment modules under
``repro.experiments`` regenerate the paper's tables/figures at the
larger presets.

Benches that time hot paths record their measurements through the
``bench_timer`` fixture; at session end they are assembled into one
schema-validated :class:`repro.bench.BenchRecord` and written twice:

- the legacy flat snapshot (``BENCH_engine.json`` for paper-scale
  runs, ``BENCH_engine.smoke.json`` for everything else) keeps the
  README-visible numbers in their familiar shape;
- the record is appended to the scale-matching history
  (``BENCH_history.jsonl`` committed for paper scale,
  ``BENCH_history.smoke.jsonl`` untracked for smoke) that
  ``tools/check_bench.py`` gates regressions against.

The record's scale descriptor is the engine fleet's
(``n_objects x points, m``): it is the dimension that actually varies
between runs, and the history partitions on it so paper-scale and
smoke-scale timings never share a baseline. The experiment-regen
groups (``fig4``/``fig5``/``table2``/``ablation``) always run at the
fixed smoke preset, so their timings are comparable within any one
partition.
"""

import datetime
import os
import platform
import time
from pathlib import Path

import pytest

from repro.bench import BenchHistory, BenchRecord, BenchScale
from repro.datagen.generator import generate_fleet
from repro.experiments.config import ExperimentConfig

#: The committed paper-scale perf record (REPRO_BENCH_SCALE=paper).
BENCH_RESULTS_FILENAME = "BENCH_engine.json"
#: Output of any lower-scale run (CI bench-smoke, local pytest).
BENCH_SMOKE_RESULTS_FILENAME = "BENCH_engine.smoke.json"
#: The serving daemon's snapshot pair (its own bench partition in the
#: history: request latency is a different quantity from engine
#: throughput and must never share a baseline with it).
BENCH_SERVE_RESULTS_FILENAME = "BENCH_serve.json"
BENCH_SERVE_SMOKE_RESULTS_FILENAME = "BENCH_serve.smoke.json"
#: The append-only histories the regression gate reads (see
#: repro.bench.history for the committed/untracked split).
BENCH_HISTORY_FILENAME = "BENCH_history.jsonl"
BENCH_SMOKE_HISTORY_FILENAME = "BENCH_history.smoke.jsonl"

PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "paper"
N_OBJECTS, N_POINTS, SIGNATURE_SIZE = (
    (500, 300, 10) if PAPER_SCALE else (60, 120, 5)
)
#: How many times ``bench_timer`` repeats each timed call (keeping the
#: fastest). Quick mode (``--benchmark-disable``) otherwise times a
#: single call per key, and on a busy/steal-prone host one sample can
#: easily swing +-20%; the min over a few repeats sits near the floor
#: of the distribution and is far more reproducible, at the cost of a
#: proportionally longer session. 1 (the default) keeps CI smoke fast.
BENCH_ROUNDS = max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "1")))
BENCH_SCALE = BenchScale(
    n_objects=N_OBJECTS,
    points_per_trajectory=N_POINTS,
    signature_size=SIGNATURE_SIZE,
    paper_scale=PAPER_SCALE,
)

_RECORDS: dict = {}
#: The serve bench's sink — a separate record (bench="serve") so a
#: serve-only session never writes an engine snapshot and vice versa.
_SERVE_RECORDS: dict = {}


@pytest.fixture(scope="session")
def config():
    return ExperimentConfig.smoke()


@pytest.fixture(scope="session")
def fleet(config):
    return generate_fleet(config.fleet)


@pytest.fixture(scope="session")
def bench_records():
    """Session-wide sink for machine-readable bench measurements.

    Keys are metric groups (``"inter_modification"``) holding
    ``{key: float}`` entries; ``bench_timer`` is the usual writer.
    """
    return _RECORDS


@pytest.fixture(scope="session")
def serve_bench_records():
    """Session-wide sink for the serving daemon's bench measurements.

    Same shape as ``bench_records`` but assembled into its own
    ``BenchRecord(bench="serve")`` at session end.
    """
    return _SERVE_RECORDS


@pytest.fixture(scope="session")
def bench_timer(bench_records):
    """``timed(group, key, fn)`` — run ``fn``, record its wall-clock.

    Records the fastest observed round under ``<group>.<key>`` (like
    pytest-benchmark's "min"), wrapping the timed call itself so the
    numbers exist in quick mode (``--benchmark-disable`` runs each
    bench once). ``REPRO_BENCH_ROUNDS=k`` repeats the call k times per
    invocation (every bench callable is already repeat-safe: full
    benchmark mode calls them many times) to push the recorded min
    toward the distribution floor on noisy hosts. Returns the last
    ``fn()`` result.
    """

    def timed(group: str, key: str, fn):
        entries = bench_records.setdefault(group, {})
        result = None
        for _ in range(BENCH_ROUNDS):
            started = time.perf_counter()
            result = fn()
            seconds = time.perf_counter() - started
            entries[key] = min(entries.get(key, float("inf")), seconds)
        return result

    return timed


def _derive_speedups(metrics: dict) -> dict:
    speedups = {}
    inter = metrics.get("inter_modification", {})
    restart = inter.get("restart_s")
    incremental = inter.get("incremental_s")
    wave = inter.get("wave_s")
    if restart and incremental:
        speedups["incremental_over_restart"] = restart / incremental
    if incremental and wave:
        speedups["wave_over_incremental"] = incremental / wave
    if restart and wave:
        speedups["wave_over_restart"] = restart / wave
    publisher = metrics.get("stream_publisher", {})
    per_chunk = publisher.get("per_chunk_s")
    shared = publisher.get("shared_tf_s")
    pipelined = publisher.get("shared_tf_parallel_s")
    if per_chunk and (pipelined or shared):
        # >1 means whole-dataset publishing is cheaper than the
        # independent per-chunk stream it replaces. The headline ratio
        # tracks the pipelined spill-backed publisher (workers=0; the
        # shipping configuration), falling back to the plain two-pass
        # time for histories recorded before the pipeline existed.
        speedups["publish_shared_tf_over_per_chunk"] = per_chunk / (
            pipelined or shared
        )
    return speedups


def _emit_record(session, bench: str, metrics: dict, snapshot_name: str):
    """Write one bench's snapshot + history append (see module doc)."""
    record = BenchRecord(
        bench=bench,
        scale=BENCH_SCALE,
        python=platform.python_version(),
        metrics=metrics,
        speedups=_derive_speedups(metrics) if bench == "engine" else {},
        provenance={
            "source": "pytest-session",
            # provenance stamp on a history record, not committed data
            "created": datetime.datetime.now(datetime.timezone.utc)  # repro: noqa[DET002]
            .replace(microsecond=0)
            .isoformat(),
        },
    )
    root = Path(session.config.rootpath)
    snapshot = root / snapshot_name
    snapshot.write_text(record.to_snapshot_json())
    history = BenchHistory(
        root
        / (
            BENCH_HISTORY_FILENAME
            if PAPER_SCALE
            else BENCH_SMOKE_HISTORY_FILENAME
        )
    )
    history.append(record)
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        reporter.write_line(f"bench results written to {snapshot}")
        reporter.write_line(
            f"bench record ({record.bench} @ {record.scale.key}) "
            f"appended to {history.path}"
        )


def pytest_sessionfinish(session, exitstatus):
    # Paper-scale runs refresh the committed snapshots and append to
    # the committed history (that append is the act of blessing the
    # run as a baseline); any other scale writes the untracked smoke
    # siblings, so casual/CI runs never clobber the records yet always
    # produce fresh numbers for the CI artifact. Each sink only writes
    # when its benches actually ran — a serve-only session must not
    # emit an empty engine record (or overwrite the committed one),
    # and vice versa. Anchored to the pytest root (the repo), not the
    # invocation cwd.
    if _RECORDS:
        _emit_record(
            session,
            "engine",
            _RECORDS,
            BENCH_RESULTS_FILENAME
            if PAPER_SCALE
            else BENCH_SMOKE_RESULTS_FILENAME,
        )
    if _SERVE_RECORDS:
        _emit_record(
            session,
            "serve",
            _SERVE_RECORDS,
            BENCH_SERVE_RESULTS_FILENAME
            if PAPER_SCALE
            else BENCH_SERVE_SMOKE_RESULTS_FILENAME,
        )

