"""Tests for tools/check_api.py (the public-API surface snapshot)."""

import copy
import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def check_api():
    spec = importlib.util.spec_from_file_location(
        "check_api", REPO_ROOT / "tools" / "check_api.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_api"] = module
    spec.loader.exec_module(module)
    return module


class TestSnapshot:
    def test_checked_in_snapshot_matches_live_surface(self, check_api, capsys):
        """The CI api job: the snapshot must always be current."""
        assert check_api.main([]) == 0
        assert "checked" in capsys.readouterr().out

    def test_surface_covers_public_modules(self, check_api):
        surface = check_api.build_surface()
        assert set(surface) == set(check_api.PUBLIC_MODULES)
        assert "MethodSpec" in surface["repro.api"]
        assert "BatchAnonymizer" in surface["repro.engine"]
        assert "DatasetRegistry" in surface["repro.data"]
        assert "run" in surface["repro.api"]

    def test_signatures_are_recorded(self, check_api):
        surface = check_api.build_surface()
        assert surface["repro.api"]["run"].startswith("function(")
        batch = surface["repro.engine"]["BatchAnonymizer"]
        assert batch["kind"] == "class"
        assert "anonymize_with_report" in batch["members"]


class TestDiff:
    def test_removal_detected(self, check_api):
        actual = check_api.build_surface()
        expected = copy.deepcopy(actual)
        del actual["repro.api"]["run"]
        problems = check_api.diff_surfaces(expected, actual)
        assert any("removed from public API" in p for p in problems)

    def test_signature_change_detected(self, check_api):
        actual = check_api.build_surface()
        expected = copy.deepcopy(actual)
        actual["repro.api"]["run"] = "function(everything_changed)"
        problems = check_api.diff_surfaces(expected, actual)
        assert any("repro.api.run" in p for p in problems)

    def test_undeclared_addition_detected(self, check_api):
        actual = check_api.build_surface()
        expected = copy.deepcopy(actual)
        actual["repro.api"]["sneaky"] = "function()"
        problems = check_api.diff_surfaces(expected, actual)
        assert any("not in snapshot" in p for p in problems)

    def test_method_level_change_pinpointed(self, check_api):
        actual = check_api.build_surface()
        expected = copy.deepcopy(actual)
        actual["repro.engine"]["BatchAnonymizer"]["members"][
            "anonymize"
        ] = "method(self)"
        problems = check_api.diff_surfaces(expected, actual)
        assert any("BatchAnonymizer.anonymize" in p for p in problems)

    def test_identical_surfaces_clean(self, check_api):
        actual = check_api.build_surface()
        assert check_api.diff_surfaces(copy.deepcopy(actual), actual) == []
