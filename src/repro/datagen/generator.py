"""Synthetic T-Drive-like fleet generator.

Each moving object receives

* a *home* node and a few *personal anchor* nodes — places this object
  visits repeatedly but (almost) nobody else does, which become its
  high-PF / low-TF signature points;
* access to a shared set of *hotspot* nodes (malls, stations, airport)
  visited by everyone, which become high-TF non-identifying points.

The object then performs trips between these places along shortest
paths on the road network, with dwell (repeated samples) at anchors.
The emitted samples sit exactly on the network polyline, spaced about
one lattice edge apart (~600 m by default) with a ~3.1-minute sampling
interval, mirroring the T-Drive statistics the paper reports.

The generator also returns per-object ground-truth routes (edge key
sequences), which the recovery-attack evaluation compares against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datagen.road_network import RoadNetwork, build_road_network
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset


@dataclass(slots=True)
class FleetConfig:
    """Knobs for the synthetic fleet.

    The defaults are scaled-down relative to T-Drive (which has 10,357
    objects with ~1,813 points each) so the full experiment pipeline
    runs in minutes in pure Python; the harness raises them per
    experiment. The *structure* (anchors, hotspots, road-constrained
    motion) is what matters for reproducing the paper's comparisons.
    """

    n_objects: int = 100
    points_per_trajectory: int = 300
    #: Road-network shape.
    rows: int = 40
    cols: int = 40
    spacing: float = 600.0
    #: How many shared hotspots exist city-wide and how strongly objects
    #: are drawn to them.
    n_hotspots: int = 20
    hotspot_probability: float = 0.35
    #: Personal anchors per object (besides home).
    anchors_per_object: int = 3
    #: Probability that a non-home anchor is drawn from a shared pool
    #: (workplaces, gyms, friends' homes — Figure 1 of the paper) rather
    #: than being exclusive. Shared anchors are visited by a handful of
    #: objects, so they are still distinctive (low TF) yet create the
    #: cross-user signature overlap real check-in data has.
    shared_anchor_probability: float = 0.5
    #: Size of the shared-anchor pool relative to the fleet.
    shared_pool_fraction: float = 0.3
    #: Probability of heading home / to a personal anchor at each trip.
    home_probability: float = 0.3
    anchor_probability: float = 0.25
    #: Dwell-sample counts (inclusive ranges).
    anchor_dwell: tuple[int, int] = (3, 6)
    hotspot_dwell: tuple[int, int] = (1, 2)
    #: Sampling interval in seconds (T-Drive: ~3.1 minutes).
    sampling_interval: float = 186.0
    #: Std-dev of isotropic GPS noise added to emitted samples, metres.
    #: Zero keeps samples exactly on the network, so that repeated
    #: visits produce identical location keys (required by the
    #: frequency-based mechanisms); turn it on to stress map matching.
    gps_noise: float = 0.0
    #: Whether personal anchors live at the tips of dead-end spur
    #: streets (cul-de-sacs). This reproduces the excursion structure of
    #: real cities: a home visit forces a drive in and out of a spur
    #: whose edges appear in no one else's routes, which is what makes
    #: signature points both identifying and recoverable.
    anchors_on_spurs: bool = True
    seed: int = 42


@dataclass(slots=True)
class FleetResult:
    """Generator output: the dataset plus its ground truth."""

    dataset: TrajectoryDataset
    network: RoadNetwork
    #: object id -> ordered list of traversed edge keys (ground-truth route).
    routes: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    #: object id -> the object's personal anchor nodes (home first).
    anchors: dict[str, list[int]] = field(default_factory=dict)
    #: The shared hotspot nodes.
    hotspots: list[int] = field(default_factory=list)


def generate_fleet(
    config: FleetConfig | None = None, network: RoadNetwork | None = None
) -> FleetResult:
    """Generate a synthetic taxi fleet according to ``config``.

    Deterministic for a fixed config (seeded RNG). When ``network`` is
    given it is used as-is; otherwise one is built from the config.
    """
    config = config or FleetConfig()
    rng = random.Random(config.seed)
    if network is None:
        anchors_needed = config.n_objects * (config.anchors_per_object + 1)
        network = build_road_network(
            rows=config.rows,
            cols=config.cols,
            spacing=config.spacing,
            n_spurs=(
                int(anchors_needed * 1.2) + 4 if config.anchors_on_spurs else 0
            ),
            seed=config.seed,
        )
    n_nodes = len(network)
    if n_nodes < config.n_hotspots + config.anchors_per_object + 1:
        raise ValueError("road network too small for the requested fleet")

    # Hotspots live on the arterial mesh, never on residential spurs.
    mesh_nodes = [n for n in range(n_nodes) if n not in set(network.spur_tips)]
    hotspots = rng.sample(mesh_nodes, config.n_hotspots)
    hotspot_set = set(hotspots)

    # Personal anchors prefer spur tips: homes are exclusive to one
    # object, while some non-home anchors come from a shared pool
    # (workplaces, friends' homes) visited by a handful of objects.
    # Either way anchored visits are excursions into streets that
    # through-traffic never uses.
    available_tips = list(network.spur_tips)
    rng.shuffle(available_tips)
    shared_pool_size = max(1, int(config.n_objects * config.shared_pool_fraction))
    shared_pool = [
        available_tips.pop()
        for _ in range(min(shared_pool_size, max(len(available_tips) - 1, 0)))
    ]

    def draw_exclusive(taken: list[int]) -> int:
        while available_tips:
            tip = available_tips.pop()
            if tip not in hotspot_set and tip not in taken:
                return tip
        candidate = _sample_non_hotspot(rng, n_nodes, hotspot_set)
        while candidate in taken:
            candidate = _sample_non_hotspot(rng, n_nodes, hotspot_set)
        return candidate

    trajectories: list[Trajectory] = []
    routes: dict[str, list[tuple[int, int]]] = {}
    anchors_by_object: dict[str, list[int]] = {}

    for index in range(config.n_objects):
        object_id = f"obj{index:05d}"
        personal: list[int] = [draw_exclusive([])]  # home is exclusive
        while len(personal) < config.anchors_per_object + 1:
            if shared_pool and rng.random() < config.shared_anchor_probability:
                candidate = rng.choice(shared_pool)
                if candidate in personal:
                    continue
                personal.append(candidate)
            else:
                personal.append(draw_exclusive(personal))
        anchors_by_object[object_id] = personal

        trajectory, route = _simulate_object(
            object_id, network, config, rng, personal, hotspots
        )
        trajectories.append(trajectory)
        routes[object_id] = route

    return FleetResult(
        dataset=TrajectoryDataset(trajectories),
        network=network,
        routes=routes,
        anchors=anchors_by_object,
        hotspots=hotspots,
    )


def _sample_non_hotspot(rng: random.Random, n_nodes: int, hotspots: set[int]) -> int:
    while True:
        node = rng.randrange(n_nodes)
        if node not in hotspots:
            return node


def _simulate_object(
    object_id: str,
    network: RoadNetwork,
    config: FleetConfig,
    rng: random.Random,
    personal: list[int],
    hotspots: list[int],
) -> tuple[Trajectory, list[tuple[int, int]]]:
    """Simulate one object's full moving history."""
    home = personal[0]
    points: list[Point] = []
    route_edges: list[tuple[int, int]] = []
    current = home
    t = float(rng.randrange(0, 3600))

    def emit(coord: tuple[float, float]) -> None:
        nonlocal t
        x, y = coord
        if config.gps_noise > 0.0:
            x += rng.gauss(0.0, config.gps_noise)
            y += rng.gauss(0.0, config.gps_noise)
        points.append(Point(x, y, t))
        t += config.sampling_interval * rng.uniform(0.8, 1.2)

    # Start with a dwell at home so every object has a clear signature.
    for _ in range(rng.randint(*config.anchor_dwell)):
        emit(network.node_coord(home))

    while len(points) < config.points_per_trajectory:
        destination, dwell_range = _choose_destination(
            rng, config, current, personal, hotspots, len(network)
        )
        if destination == current:
            continue
        path = network.shortest_path(current, destination)
        for i in range(len(path) - 1):
            u, v = path[i], path[i + 1]
            route_edges.append((u, v) if u < v else (v, u))
        samples = network.route_points(path, config.spacing)
        # Skip the first sample: it duplicates the previous dwell point.
        for coord in samples[1:]:
            emit(coord)
            if len(points) >= config.points_per_trajectory:
                break
        for _ in range(rng.randint(*dwell_range)):
            if len(points) >= config.points_per_trajectory:
                break
            emit(network.node_coord(destination))
        current = destination

    return Trajectory(object_id, points[: config.points_per_trajectory]), route_edges


def _choose_destination(
    rng: random.Random,
    config: FleetConfig,
    current: int,
    personal: list[int],
    hotspots: list[int],
    n_nodes: int,
) -> tuple[int, tuple[int, int]]:
    """Pick the next trip destination and its dwell-sample range."""
    roll = rng.random()
    if roll < config.home_probability:
        return personal[0], config.anchor_dwell
    roll -= config.home_probability
    if roll < config.anchor_probability and len(personal) > 1:
        return rng.choice(personal[1:]), config.anchor_dwell
    roll -= config.anchor_probability
    if roll < config.hotspot_probability:
        return rng.choice(hotspots), config.hotspot_dwell
    return rng.randrange(n_nodes), (1, 1)
