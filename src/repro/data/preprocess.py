"""Raw-to-clean preprocessing for real trajectory data.

Real GPS logs are noisy in ways the paper's mechanisms cannot absorb:
out-of-order and duplicated timestamps, hours-long gaps where the
receiver was off (which would otherwise interpolate a straight line
across a city), out-of-area excursions, and single-sample stubs. The
pipeline here turns one raw trajectory into zero or more clean *trips*,
streaming — every step is per-trajectory, so it composes with the lazy
readers in :mod:`repro.data.stream` without materialising the dataset.

Per trajectory, in order (each knob documented in ``docs/data.md``):

1. sort samples by timestamp;
2. drop duplicate timestamps (keep the first sample of each instant);
3. drop samples outside the configured bbox, if any;
4. snap coordinates to a lattice, if configured;
5. split into trips wherever the time gap *exceeds* ``gap_threshold_s``
   (an exactly-threshold gap does not split);
6. resample each trip to a fixed interval, if configured;
7. drop trips shorter than ``min_points``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Iterable, Iterator

from repro.trajectory.model import Point, Trajectory


@dataclass(frozen=True, slots=True)
class PreprocessConfig:
    """Every knob of the preprocessing pipeline (defaults T-Drive-tuned).

    ``key()`` hashes the configuration into the artifact version string,
    so two ingests of one source with different knobs cache separately
    (see :mod:`repro.data.registry`).
    """

    #: Split a trajectory into trips where consecutive samples are more
    #: than this many seconds apart. T-Drive samples every ~3.1 minutes;
    #: 30 minutes of silence reliably means the taxi was parked.
    gap_threshold_s: float = 1800.0
    #: Drop trips with fewer points; 2 is the minimum that still forms a
    #: segment (the unit of the paper's spatial index and modification).
    min_points: int = 2
    #: Keep only samples inside ``(min_x, min_y, max_x, max_y)`` planar
    #: metres; ``None`` keeps everything.
    bbox: tuple[float, float, float, float] | None = None
    #: Resample each trip to this fixed interval in seconds by linear
    #: interpolation; ``None`` keeps the raw sampling.
    resample_dt: float | None = None
    #: Snap coordinates to this lattice (metres) so repeat visits
    #: collapse onto identical location keys — the frequency-based
    #: mechanisms count locations by exact identity. ``None`` disables.
    snap: float | None = None

    def __post_init__(self) -> None:
        if self.gap_threshold_s <= 0:
            raise ValueError("gap_threshold_s must be positive")
        if self.min_points < 1:
            raise ValueError("min_points must be at least 1")
        if self.bbox is not None:
            min_x, min_y, max_x, max_y = self.bbox
            if min_x >= max_x or min_y >= max_y:
                raise ValueError(f"degenerate bbox {self.bbox}")
        if self.resample_dt is not None and self.resample_dt <= 0:
            raise ValueError("resample_dt must be positive")
        if self.snap is not None and self.snap <= 0:
            raise ValueError("snap must be positive")

    def to_dict(self) -> dict:
        data = asdict(self)
        if data["bbox"] is not None:
            data["bbox"] = list(data["bbox"])
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PreprocessConfig":
        if data.get("bbox") is not None:
            data = {**data, "bbox": tuple(data["bbox"])}
        return cls(**data)

    def key(self) -> str:
        """Stable 12-hex-digit digest of the configuration."""
        payload = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.blake2b(payload, digest_size=6).hexdigest()


@dataclass(slots=True)
class IngestStats:
    """Counters accumulated while a preprocessing stream is consumed."""

    objects_in: int = 0
    points_in: int = 0
    duplicate_timestamps: int = 0
    out_of_bbox: int = 0
    gap_splits: int = 0
    short_trips: int = 0
    trips_out: int = 0
    points_out: int = 0

    def to_dict(self) -> dict[str, int]:
        return asdict(self)

    def summary(self) -> str:
        return (
            f"read {self.objects_in} objects / {self.points_in} points; "
            f"dropped {self.duplicate_timestamps} duplicate timestamps, "
            f"{self.out_of_bbox} out-of-bbox points, "
            f"{self.short_trips} short trips; "
            f"split at {self.gap_splits} gaps; "
            f"wrote {self.trips_out} trips / {self.points_out} points"
        )


def split_gaps(points: list[Point], threshold_s: float) -> list[list[Point]]:
    """Split a sorted point list wherever the time gap exceeds the
    threshold (strictly — an exactly-threshold gap stays one trip)."""
    if not points:
        return []
    trips: list[list[Point]] = [[points[0]]]
    for previous, point in zip(points, points[1:], strict=False):
        if point.t - previous.t > threshold_s:
            trips.append([point])
        else:
            trips[-1].append(point)
    return trips


def resample(points: list[Point], dt: float) -> list[Point]:
    """Linearly resample a sorted trip onto the fixed grid ``t0 + k*dt``.

    The grid starts at the trip's first timestamp and extends while it
    stays within the trip's time span, so the first sample is always
    preserved exactly and every emitted point is interpolated — never
    extrapolated. Trips shorter than two points pass through unchanged.
    """
    if len(points) < 2:
        return list(points)
    resampled: list[Point] = []
    t0, t_end = points[0].t, points[-1].t
    segment = 0
    k = 0
    while True:
        t = t0 + k * dt
        if t > t_end:
            break
        while points[segment + 1].t < t and segment < len(points) - 2:
            segment += 1
        a, b = points[segment], points[segment + 1]
        span = b.t - a.t
        w = 0.0 if span <= 0 else (t - a.t) / span
        resampled.append(Point(a.x + w * (b.x - a.x), a.y + w * (b.y - a.y), t))
        k += 1
    return resampled


def preprocess_trajectory(
    trajectory: Trajectory,
    config: PreprocessConfig,
    stats: IngestStats | None = None,
) -> list[Trajectory]:
    """Clean one raw trajectory into zero or more trips.

    Trip ids: a trajectory that splits (before min-length filtering)
    into ``n > 1`` trips emits ``<object_id>#<k>`` with ``k`` counting
    from 0; an unsplit trajectory keeps its id.
    """
    if stats is not None:
        stats.objects_in += 1
        stats.points_in += len(trajectory)
    points = sorted(trajectory.points, key=lambda p: p.t)

    deduped: list[Point] = []
    for point in points:
        if deduped and point.t == deduped[-1].t:
            if stats is not None:
                stats.duplicate_timestamps += 1
            continue
        deduped.append(point)
    points = deduped

    if config.bbox is not None:
        min_x, min_y, max_x, max_y = config.bbox
        kept = [
            p for p in points if min_x <= p.x <= max_x and min_y <= p.y <= max_y
        ]
        if stats is not None:
            stats.out_of_bbox += len(points) - len(kept)
        points = kept

    if config.snap is not None:
        cell = config.snap
        points = [
            Point(round(p.x / cell) * cell, round(p.y / cell) * cell, p.t)
            for p in points
        ]

    trips = split_gaps(points, config.gap_threshold_s)
    if stats is not None and trips:
        stats.gap_splits += len(trips) - 1

    result: list[Trajectory] = []
    for k, trip in enumerate(trips):
        if config.resample_dt is not None:
            trip = resample(trip, config.resample_dt)
        if len(trip) < config.min_points:
            if stats is not None:
                stats.short_trips += 1
            continue
        trip_id = (
            trajectory.object_id
            if len(trips) == 1
            else f"{trajectory.object_id}#{k}"
        )
        result.append(Trajectory(trip_id, trip))
    if stats is not None:
        stats.trips_out += len(result)
        stats.points_out += sum(len(t) for t in result)
    return result


def preprocess_stream(
    trajectories: Iterable[Trajectory],
    config: PreprocessConfig | None = None,
    stats: IngestStats | None = None,
) -> Iterator[Trajectory]:
    """Lazily preprocess a trajectory stream, one object at a time.

    ``stats``, when given, is updated in place as the stream is
    consumed — after exhaustion it holds the full ingest summary.
    """
    config = config or PreprocessConfig()
    for trajectory in trajectories:
        yield from preprocess_trajectory(trajectory, config, stats)
