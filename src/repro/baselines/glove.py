"""GLOVE: k-anonymity via spatiotemporal generalization [8].

GLOVE iteratively merges the cheapest pair of trajectory groups until
every group holds at least ``k`` members, then publishes each group as
one *generalized* trajectory — a sequence of grid cells and time
ranges — that all members share. We emit the generalized trajectory as
points at cell centres with coarsened timestamps, so that every member
of a group is spatially identical (k-anonymous) in the published data.

The merge cost is the synchronized spatial gap between group
representatives, which approximates GLOVE's pairwise generalization
cost at a fraction of the price.
"""

from __future__ import annotations

import math

from repro.trajectory.distance import synchronized_distance
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset


class Glove:
    """k-anonymity by greedy group merging and cell generalization."""

    def __init__(
        self,
        k: int = 5,
        cell_size: float = 500.0,
        time_window: float = 1800.0,
    ) -> None:
        if k < 2:
            raise ValueError("k must be at least 2")
        if cell_size <= 0 or time_window <= 0:
            raise ValueError("cell size and time window must be positive")
        self.k = k
        self.cell_size = cell_size
        self.time_window = time_window

    # -- generalization primitives ------------------------------------------------

    def _generalize_point(self, p: Point) -> Point:
        """Snap a sample to its cell centre and time-window start."""
        cx = (math.floor(p.x / self.cell_size) + 0.5) * self.cell_size
        cy = (math.floor(p.y / self.cell_size) + 0.5) * self.cell_size
        ct = math.floor(p.t / self.time_window) * self.time_window
        return Point(cx, cy, ct)

    def _representative(self, dataset: TrajectoryDataset, members: list[int]) -> Trajectory:
        """The group's representative: its first member (merge pivot)."""
        return dataset[members[0]]

    # -- grouping ----------------------------------------------------------------------

    def _groups(self, dataset: TrajectoryDataset) -> list[list[int]]:
        """Greedy merging of the cheapest groups until all reach size k."""
        groups: list[list[int]] = [[i] for i in range(len(dataset))]
        if not groups:
            return groups
        while True:
            small = [g for g in groups if len(g) < self.k]
            if not small or len(groups) == 1:
                break
            # Pick the smallest group and merge it with its cheapest partner.
            source = min(small, key=len)
            source_rep = self._representative(dataset, source)
            best = None
            best_cost = float("inf")
            for candidate in groups:
                if candidate is source:
                    continue
                cost = synchronized_distance(
                    source_rep, self._representative(dataset, candidate)
                )
                if cost < best_cost:
                    best_cost = cost
                    best = candidate
            assert best is not None
            groups.remove(source)
            best.extend(source)
        return groups

    # -- publication --------------------------------------------------------------------

    def _publish_group(
        self, dataset: TrajectoryDataset, members: list[int]
    ) -> dict[str, Trajectory]:
        """All members publish the pivot's generalized cell sequence.

        Consecutive duplicate cells are collapsed, mirroring GLOVE's
        region-based output. Timestamps come from each member's own
        (generalized) clock so durations stay roughly personal.
        """
        pivot = self._representative(dataset, members)
        cells: list[Point] = []
        for p in pivot:
            g = self._generalize_point(p)
            if not cells or (g.x, g.y) != (cells[-1].x, cells[-1].y):
                cells.append(g)
        published: dict[str, Trajectory] = {}
        for index in members:
            member = dataset[index]
            t0 = (
                math.floor(member[0].t / self.time_window) * self.time_window
                if len(member)
                else 0.0
            )
            points = [
                Point(c.x, c.y, t0 + j * self.time_window)
                for j, c in enumerate(cells)
            ]
            published[member.object_id] = Trajectory(member.object_id, points)
        return published

    def anonymize(self, dataset: TrajectoryDataset) -> TrajectoryDataset:
        if len(dataset) == 0:
            return dataset.copy()
        output: dict[str, Trajectory] = {}
        for members in self._groups(dataset):
            output.update(self._publish_group(dataset, members))
        return TrajectoryDataset(
            output[trajectory.object_id] for trajectory in dataset
        )
