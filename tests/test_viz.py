"""Tests for the SVG rendering module."""

import pytest

from repro.datagen.generator import FleetConfig, generate_fleet
from repro.geo.geometry import BBox
from repro.trajectory.model import Point, Trajectory
from repro.viz.svg import PALETTE, SvgCanvas, render_comparison, render_fleet


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(
        FleetConfig(n_objects=4, points_per_trajectory=40, rows=8, cols=8, seed=2)
    )


def traj(coords, object_id="t"):
    return Trajectory(
        object_id,
        [Point(float(x), float(y), 60.0 * i) for i, (x, y) in enumerate(coords)],
    )


class TestSvgCanvas:
    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            SvgCanvas(BBox(0, 0, 100, 100), width=5)

    def test_transform_flips_y(self):
        canvas = SvgCanvas(BBox(0, 0, 100, 100), width=100, margin=0.0)
        x_low, y_low = canvas.transform((0.0, 0.0))
        x_high, y_high = canvas.transform((0.0, 100.0))
        assert y_low > y_high  # south maps below north

    def test_transform_corners_within_canvas(self):
        canvas = SvgCanvas(BBox(0, 0, 200, 100), width=400, margin=10.0)
        for corner in [(0, 0), (200, 0), (0, 100), (200, 100)]:
            x, y = canvas.transform(corner)
            assert 0 <= x <= canvas.width
            assert 0 <= y <= canvas.height

    def test_polyline_element(self):
        canvas = SvgCanvas(BBox(0, 0, 10, 10), width=100)
        canvas.polyline([(0, 0), (5, 5), (10, 10)], color="#123456")
        svg = canvas.to_string()
        assert "<polyline" in svg
        assert "#123456" in svg

    def test_polyline_single_point_noop(self):
        canvas = SvgCanvas(BBox(0, 0, 10, 10), width=100)
        canvas.polyline([(0, 0)])
        assert "<polyline" not in canvas.to_string()

    def test_circle_and_text(self):
        canvas = SvgCanvas(BBox(0, 0, 10, 10), width=100)
        canvas.circle((5, 5), radius=2.0, color="#ff0000")
        canvas.text((5, 5), "home")
        svg = canvas.to_string()
        assert "<circle" in svg
        assert ">home</text>" in svg

    def test_valid_svg_structure(self):
        canvas = SvgCanvas(BBox(0, 0, 10, 10), width=100)
        canvas.line((0, 0), (10, 10))
        svg = canvas.to_string()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_save(self, tmp_path):
        canvas = SvgCanvas(BBox(0, 0, 10, 10), width=100)
        target = canvas.save(tmp_path / "out.svg")
        assert target.exists()
        assert target.read_text().startswith("<svg")

    def test_draw_network_and_dataset(self, fleet):
        canvas = SvgCanvas(fleet.network.bbox(), width=300)
        canvas.draw_network(fleet.network)
        canvas.draw_dataset(fleet.dataset)
        svg = canvas.to_string()
        assert svg.count("<line") == len(fleet.network.edges)
        assert svg.count("<polyline") == len(fleet.dataset)


class TestConvenienceRenders:
    def test_render_fleet(self, fleet):
        svg = render_fleet(fleet.dataset, network=fleet.network,
                           markers=[(0.0, 0.0)])
        assert "<svg" in svg
        assert "<circle" in svg
        assert svg.count("<polyline") == len(fleet.dataset)

    def test_render_fleet_without_network(self, fleet):
        svg = render_fleet(fleet.dataset)
        assert "<line" not in svg

    def test_render_comparison_two_colors(self):
        a = traj([(0, 0), (100, 0), (200, 0)], "a")
        b = traj([(0, 10), (100, 10), (200, 10)], "b")
        svg = render_comparison(a, b)
        assert PALETTE[0] in svg
        assert PALETTE[1] in svg
        assert svg.count("<polyline") == 2
