"""Tests for intra-/inter-trajectory modification.

The central invariant: after modification, the data *satisfies the
perturbed frequency distributions* (that is what carries the DP
guarantee to the published trajectories).
"""

import pytest

from repro.core.edits import EditableTrajectory
from repro.core.global_mechanism import TFPerturbation
from repro.core.local_mechanism import PFPerturbation
from repro.core.modification import (
    InterTrajectoryModifier,
    IntraTrajectoryModifier,
    index_extent,
    iter_nearest,
    make_index_factory,
    search_knn,
)
from repro.index.hierarchical import HierarchicalGridIndex
from repro.geo.geometry import BBox
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset


def traj(object_id, coords):
    return Trajectory(
        object_id,
        [Point(float(x), float(y), 60.0 * i) for i, (x, y) in enumerate(coords)],
    )


def pf_perturbation(object_id, original, perturbed):
    return PFPerturbation(
        object_id=object_id,
        original=original,
        perturbed=perturbed,
        stage1_mean_noise=0.0,
        epsilon=1.0,
    )


class TestMakeIndexFactory:
    def test_backends(self):
        box = BBox(0, 0, 100, 100)
        for backend in ("linear", "uniform", "hierarchical"):
            index = make_index_factory(backend)(box)
            index.insert((0, 0), (1, 1))
            assert len(index) == 1

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            make_index_factory("kd-forest")

    def test_rtree_backend(self):
        index = make_index_factory("rtree")(BBox(0, 0, 100, 100))
        index.insert((0, 0), (1, 1))
        assert len(index) == 1

    def test_search_knn_dispatch(self):
        box = BBox(0, 0, 100, 100)
        hier = make_index_factory("hierarchical", levels=4)(box)
        hier.insert((0, 0), (10, 0))
        assert search_knn(hier, (5, 5), 1, "bottom_up_down")
        linear = make_index_factory("linear")(box)
        linear.insert((0, 0), (10, 0))
        assert search_knn(linear, (5, 5), 1, "bottom_up_down")


@pytest.mark.parametrize("backend", ["linear", "uniform", "hierarchical"])
class TestIntraTrajectoryModifier:
    def make(self, backend):
        return IntraTrajectoryModifier(
            make_index_factory(backend, levels=6, granularity=32)
        )

    def test_satisfies_perturbed_pf(self, backend):
        trajectory = traj(
            "a", [(0, 0), (10, 0), (0, 0), (20, 0), (0, 0), (30, 0), (40, 0)]
        )
        perturbation = pf_perturbation(
            "a",
            original={(0.0, 0.0): 3, (10.0, 0.0): 1},
            perturbed={(0.0, 0.0): 1, (10.0, 0.0): 3},
        )
        modified, report = self.make(backend).apply(trajectory, perturbation)
        pf = modified.point_frequencies()
        assert pf[(0.0, 0.0)] == 1
        assert pf[(10.0, 0.0)] == 3
        assert report.deletions == 2
        assert report.insertions == 2

    def test_untouched_locations_preserved(self, backend):
        trajectory = traj("a", [(0, 0), (10, 0), (20, 0), (30, 0)])
        perturbation = pf_perturbation(
            "a", original={(0.0, 0.0): 1}, perturbed={(0.0, 0.0): 0}
        )
        modified, _ = self.make(backend).apply(trajectory, perturbation)
        pf = modified.point_frequencies()
        for loc in [(10.0, 0.0), (20.0, 0.0), (30.0, 0.0)]:
            assert pf[loc] == 1

    def test_no_change_for_identity_perturbation(self, backend):
        trajectory = traj("a", [(0, 0), (10, 0), (20, 0)])
        perturbation = pf_perturbation(
            "a", original={(0.0, 0.0): 1}, perturbed={(0.0, 0.0): 1}
        )
        modified, report = self.make(backend).apply(trajectory, perturbation)
        assert [p.coord for p in modified] == [p.coord for p in trajectory]
        assert report.utility_loss == 0.0

    def test_insertions_choose_near_segments(self, backend):
        # Target location (5, 1) is 1m from segment <(0,0),(10,0)> but
        # far from the distant tail segments.
        trajectory = traj(
            "a", [(0, 0), (10, 0), (1000, 1000), (2000, 2000), (5, 1)]
        )
        perturbation = pf_perturbation(
            "a", original={(5.0, 1.0): 1}, perturbed={(5.0, 1.0): 2}
        )
        modified, report = self.make(backend).apply(trajectory, perturbation)
        assert modified.point_frequencies()[(5.0, 1.0)] == 2
        assert report.utility_loss <= 2.0  # near-segment insertion

    def test_empty_trajectory(self, backend):
        perturbation = pf_perturbation("a", original={}, perturbed={})
        modified, report = self.make(backend).apply(Trajectory("a"), perturbation)
        assert len(modified) == 0
        assert report.utility_loss == 0.0

    def test_original_not_mutated(self, backend):
        trajectory = traj("a", [(0, 0), (10, 0), (0, 0)])
        perturbation = pf_perturbation(
            "a", original={(0.0, 0.0): 2}, perturbed={(0.0, 0.0): 0}
        )
        self.make(backend).apply(trajectory, perturbation)
        assert len(trajectory) == 3


class TestInterTrajectoryModifier:
    def make_dataset(self):
        return TrajectoryDataset(
            [
                traj("a", [(0, 0), (10, 0), (20, 0), (30, 0)]),
                traj("b", [(0, 100), (10, 100), (20, 100)]),
                traj("c", [(0, 200), (10, 200), (20, 200), (10, 200)]),
                traj("d", [(5, 0), (15, 0), (25, 0)]),
            ]
        )

    def make(self):
        return InterTrajectoryModifier(make_index_factory("hierarchical", levels=6))

    def test_tf_increase_inserts_into_nearest_missing_trajectories(self):
        dataset = self.make_dataset()
        loc = (10.0, 0.0)  # present only in trajectory a
        perturbation = TFPerturbation(
            original={loc: 1}, perturbed={loc: 3}, epsilon=1.0
        )
        modified, report = self.make().apply(dataset, perturbation)
        tf = modified.trajectory_frequencies()
        assert tf[loc] == 3
        assert report.insertions == 2
        # Trajectory d runs along y=0 so it must be one of the targets;
        # b (y=100) is the second nearest; far-away c (y=200) must lose.
        assert modified.by_id("d").point_frequencies()[loc] >= 1
        assert modified.by_id("c").point_frequencies()[loc] == 0

    def test_tf_decrease_removes_all_occurrences(self):
        dataset = TrajectoryDataset(
            [
                traj("a", [(0, 0), (50, 50), (0, 0), (60, 60)]),
                traj("b", [(0, 0), (70, 70)]),
                traj("c", [(80, 80), (0, 0), (90, 90)]),
            ]
        )
        loc = (0.0, 0.0)
        perturbation = TFPerturbation(
            original={loc: 3}, perturbed={loc: 1}, epsilon=1.0
        )
        modified, report = self.make().apply(dataset, perturbation)
        tf = modified.trajectory_frequencies()
        assert tf[loc] == 1
        # The remaining trajectory keeps *all* its occurrences.
        keeper = [t for t in modified if t.point_frequencies()[loc] > 0]
        assert len(keeper) == 1

    def test_identity_perturbation_changes_nothing(self):
        dataset = self.make_dataset()
        loc = (10.0, 0.0)
        perturbation = TFPerturbation(
            original={loc: 1}, perturbed={loc: 1}, epsilon=1.0
        )
        modified, report = self.make().apply(dataset, perturbation)
        assert report.utility_loss == 0.0
        for original, new in zip(dataset, modified, strict=True):
            assert [p.coord for p in original] == [p.coord for p in new]

    def test_unrealisable_increase_reported(self):
        dataset = TrajectoryDataset([traj("a", [(0, 0), (10, 0)])])
        loc = (0.0, 0.0)
        # Asking TF=2 with only one trajectory (which already contains it).
        perturbation = TFPerturbation(
            original={loc: 1}, perturbed={loc: 2}, epsilon=1.0
        )
        _, report = self.make().apply(dataset, perturbation)
        assert report.unrealised >= 1

    def test_multiple_locations_processed(self):
        dataset = self.make_dataset()
        loc_up = (10.0, 100.0)  # in b only
        loc_down = (10.0, 200.0)  # in c only
        perturbation = TFPerturbation(
            original={loc_up: 1, loc_down: 1},
            perturbed={loc_up: 2, loc_down: 0},
            epsilon=1.0,
        )
        modified, _ = self.make().apply(dataset, perturbation)
        tf = modified.trajectory_frequencies()
        assert tf[loc_up] == 2
        assert tf.get(loc_down, 0) == 0

    def test_empty_dataset(self):
        perturbation = TFPerturbation(original={}, perturbed={}, epsilon=1.0)
        modified, report = self.make().apply(TrajectoryDataset(), perturbation)
        assert len(modified) == 0
        assert report.utility_loss == 0.0

    def test_original_not_mutated(self):
        dataset = self.make_dataset()
        loc = (10.0, 0.0)
        perturbation = TFPerturbation(
            original={loc: 1}, perturbed={loc: 0}, epsilon=1.0
        )
        self.make().apply(dataset, perturbation)
        assert dataset.by_id("a").point_frequencies()[loc] == 1


class TestIndexExtent:
    """The bbox margin must scale with the data, not with a fixed unit.

    Regression for the old flat ``_BBOX_MARGIN = 10.0``: on a
    lat/lon-degree-scale dataset a 10-unit margin inflated the extent
    ~100x per side, so every grid level collapsed onto a handful of
    cells and kNN degenerated to a linear scan.
    """

    def test_margin_is_relative_on_degree_scale_data(self):
        bbox = BBox(116.3, 39.9, 116.5, 40.1)  # Beijing-ish, degrees
        extent = index_extent(bbox)
        assert extent.contains_bbox(bbox)
        # Old behaviour: width jumped from 0.2 to 20.2. New: ~2 %.
        assert extent.width < 1.1 * bbox.width
        assert extent.height < 1.1 * bbox.height

    def test_margin_is_relative_on_metre_scale_data(self):
        bbox = BBox(0.0, 0.0, 10_000.0, 10_000.0)
        extent = index_extent(bbox)
        assert extent.contains_bbox(bbox)
        assert extent.width < 1.1 * bbox.width

    def test_degenerate_bbox_gets_positive_extent(self):
        extent = index_extent(BBox(5.0, 5.0, 5.0, 5.0))
        assert extent.width > 0.0
        assert extent.height > 0.0

    def test_grid_resolution_preserved_on_degree_scale(self):
        """Nearby-but-distinct points must resolve to distinct cells.

        Two points 1 % of the data extent apart: with the relative
        margin they map to different finest-level cells; under the old
        flat 10-unit margin the whole dataset collapsed onto a handful
        of cells and they became indistinguishable.
        """
        bbox = BBox(116.3, 39.9, 116.5, 40.1)
        p1 = (116.4, 40.0)
        p2 = (116.402, 40.0)
        index = HierarchicalGridIndex(index_extent(bbox), levels=10)
        assert index._finest_coords(p1) != index._finest_coords(p2)
        inflated = HierarchicalGridIndex(bbox.expand(10.0), levels=10)
        assert inflated._finest_coords(p1) == inflated._finest_coords(p2)


class TestInterTrajectoryModifierEdgeCases:
    def make(self, **kwargs):
        return InterTrajectoryModifier(
            make_index_factory("hierarchical", levels=6), **kwargs
        )

    def test_increase_with_fewer_eligible_owners_than_delta(self):
        """Δl = 4 but only two trajectories can accept the location."""
        loc = (10.0, 0.0)
        dataset = TrajectoryDataset(
            [
                traj("has", [(0, 0), (10, 0), (20, 0)]),  # already contains loc
                traj("a", [(0, 50), (20, 50)]),
                traj("b", [(0, 90), (20, 90)]),
            ]
        )
        perturbation = TFPerturbation(
            original={loc: 1}, perturbed={loc: 5}, epsilon=1.0
        )
        modified, report = self.make().apply(dataset, perturbation)
        assert report.insertions == 2
        assert report.unrealised == 2
        assert modified.trajectory_frequencies()[loc] == 3

    def test_vanished_segment_falls_back_to_live_segment(self):
        """A stale sid (owner matches, segment gone from the editable)
        must be replaced by the owner's nearest *live* segment, never
        re-selected from the shared index."""
        modifier = self.make()
        dataset = TrajectoryDataset(
            [
                traj("a", [(0, 100), (20, 100)]),
                traj("b", [(0, 200), (20, 200)]),
            ]
        )
        shared = modifier.index_factory(index_extent(dataset.bbox()))
        editables = {
            t.object_id: EditableTrajectory(t, shared) for t in dataset
        }
        loc = (10.0, 0.0)
        # Phantom: registered in the shared index under owner "a" but
        # unknown to a's editable — and nearer to loc than anything real.
        phantom = shared.insert((0.0, 0.0), (20.0, 0.0), owner="a")
        assert not editables["a"].node_for_segment(phantom)
        report = modifier._insert_into_nearest_trajectories(
            shared, editables, loc, 1
        )
        assert report.insertions == 1
        assert report.unrealised == 0
        assert editables["a"].contains(loc)

    def test_nearest_segment_of_owner_skips_stale_sids(self):
        modifier = self.make()
        dataset = TrajectoryDataset([traj("a", [(0, 100), (20, 100)])])
        shared = modifier.index_factory(index_extent(dataset.bbox()))
        editable = EditableTrajectory(dataset[0], shared)
        phantom = shared.insert((0.0, 0.0), (20.0, 0.0), owner="a")
        found = modifier._nearest_segment_of_owner(shared, (10.0, 0.0), editable)
        assert found is not None
        assert found != phantom
        assert editable.node_for_segment(found)

    def test_nearest_segment_of_owner_without_live_segments(self):
        modifier = self.make()
        dataset = TrajectoryDataset([traj("a", [(0, 100), (20, 100)])])
        shared = modifier.index_factory(index_extent(dataset.bbox()))
        editable = EditableTrajectory(dataset[0], shared)
        editable.detach()
        assert (
            modifier._nearest_segment_of_owner(shared, (10.0, 0.0), editable)
            is None
        )

    def test_rejects_unknown_candidate_source(self):
        with pytest.raises(ValueError):
            InterTrajectoryModifier(candidate_source="oracle")

    @pytest.mark.parametrize("backend", ["linear", "uniform", "hierarchical"])
    def test_restart_and_incremental_select_equal_cost(self, backend):
        """The engine's lazy frontier must make the same-cost selection
        the seed restart-scan made (ties may pick a different owner)."""
        import random as random_module

        rng = random_module.Random(2)
        trajectories = [
            traj(
                f"t{i}",
                [
                    (rng.uniform(0, 2000), rng.uniform(0, 2000))
                    for _ in range(6)
                ],
            )
            for i in range(10)
        ]
        loc = (1000.0, 1000.0)
        perturbation = TFPerturbation(
            original={loc: 0}, perturbed={loc: 4}, epsilon=1.0
        )
        losses = {}
        for source in ("incremental", "restart"):
            dataset = TrajectoryDataset([t.copy() for t in trajectories])
            modifier = InterTrajectoryModifier(
                make_index_factory(backend, levels=6, granularity=32),
                candidate_source=source,
            )
            modified, report = modifier.apply(dataset, perturbation)
            assert modified.trajectory_frequencies()[loc] == 4, source
            losses[source] = report.utility_loss
        assert losses["incremental"] == pytest.approx(losses["restart"])

    @pytest.mark.parametrize("seed", range(3))
    def test_index_and_bbox_selection_agree_on_fleet(self, seed):
        """Same cost-minimal selection on generator-produced data."""
        from repro.datagen.generator import FleetConfig, generate_fleet

        fleet = generate_fleet(
            FleetConfig(
                n_objects=10, points_per_trajectory=40, rows=8, cols=8,
                seed=seed,
            )
        )
        loc = (1.0, 1.0)
        perturbation = TFPerturbation(
            original={loc: 0}, perturbed={loc: 3}, epsilon=1.0
        )
        losses = {}
        for selection in ("index", "bbox"):
            modifier = InterTrajectoryModifier(
                make_index_factory("hierarchical", levels=7),
                trajectory_selection=selection,
            )
            modified, report = modifier.apply(fleet.dataset, perturbation)
            assert modified.trajectory_frequencies()[loc] == 3, selection
            losses[selection] = report.utility_loss
        assert losses["index"] == pytest.approx(losses["bbox"], rel=1e-6)


class TestIterNearestDispatch:
    def test_native_backends_use_their_iterator(self):
        index = make_index_factory("hierarchical", levels=5)(BBox(0, 0, 100, 100))
        index.insert((0, 0), (10, 0))
        index.insert((50, 50), (60, 50))
        hits = list(iter_nearest(index, (5.0, 1.0)))
        assert [sid for sid, _ in hits] == [0, 1]

    def test_fallback_for_knn_only_indexes(self):
        class KnnOnly:
            def __init__(self, inner):
                self.inner = inner

            def knn(self, q, k):
                return self.inner.knn(q, k)

            def __len__(self):
                return len(self.inner)

        inner = make_index_factory("linear")(BBox(0, 0, 100, 100))
        inner.insert((0, 0), (10, 0))
        inner.insert((50, 50), (60, 50))
        hits = list(iter_nearest(KnnOnly(inner), (5.0, 1.0)))
        assert [sid for sid, _ in hits] == [0, 1]


class TestBBoxPrunedSelection:
    """The paper's future-work optimisation must match the index path."""

    def make_dataset(self, seed=0):
        import random

        rng = random.Random(seed)
        trajectories = []
        for i in range(12):
            cx = rng.uniform(0, 5000)
            cy = rng.uniform(0, 5000)
            coords = [
                (cx + rng.uniform(-400, 400), cy + rng.uniform(-400, 400))
                for _ in range(8)
            ]
            trajectories.append(traj(f"t{i}", coords))
        return TrajectoryDataset(trajectories)

    def make(self, selection):
        return InterTrajectoryModifier(
            make_index_factory("hierarchical", levels=7),
            trajectory_selection=selection,
        )

    def test_rejects_unknown_selection(self):
        with pytest.raises(ValueError):
            InterTrajectoryModifier(trajectory_selection="oracle")

    @pytest.mark.parametrize("seed", range(5))
    def test_bbox_matches_index_selection_cost(self, seed):
        """Both selection strategies realise the same minimum total
        insertion cost (selected trajectories may differ on ties)."""
        loc = (2500.0, 2500.0)
        perturbation = TFPerturbation(
            original={loc: 0}, perturbed={loc: 3}, epsilon=1.0
        )
        results = {}
        for selection in ("index", "bbox"):
            dataset = self.make_dataset(seed)
            modified, report = self.make(selection).apply(dataset, perturbation)
            tf = modified.trajectory_frequencies()
            assert tf[loc] == 3, selection
            results[selection] = report.utility_loss
        assert results["bbox"] == pytest.approx(results["index"], rel=1e-6)

    def test_bbox_decreases_work_for_clustered_data(self):
        """With most trajectories far away, the pruning path evaluates
        only a handful of exact nearest-segment scans."""
        dataset = self.make_dataset(3)
        loc = (0.0, 0.0)
        perturbation = TFPerturbation(
            original={loc: 0}, perturbed={loc: 2}, epsilon=1.0
        )
        modified, report = self.make("bbox").apply(dataset, perturbation)
        assert modified.trajectory_frequencies()[loc] == 2
        assert report.unrealised == 0
