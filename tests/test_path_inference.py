"""Tests for the path-inference recovery attack."""

import pytest

from repro.attacks.path_inference import PathInferenceAttack
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.datagen.road_network import build_road_network
from repro.metrics.recovery import score_recovery
from repro.trajectory.model import Point, Trajectory


@pytest.fixture(scope="module")
def network():
    return build_road_network(rows=12, cols=12, spacing=600.0, seed=4)


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(
        FleetConfig(n_objects=5, points_per_trajectory=60, rows=12, cols=12, seed=51)
    )


class TestConfiguration:
    def test_rejects_bad_params(self, network):
        with pytest.raises(ValueError):
            PathInferenceAttack(network, snap_radius=0.0)
        with pytest.raises(ValueError):
            PathInferenceAttack(network, max_leg_factor=0.5)


class TestInference:
    def test_recovers_clean_route(self, network):
        path = network.shortest_path(0, 143)
        coords = network.route_points(path, step=600.0)
        trajectory = Trajectory(
            "probe", [Point(x, y, 60.0 * i) for i, (x, y) in enumerate(coords)]
        )
        result = PathInferenceAttack(network).infer(trajectory)
        truth = set()
        for i in range(len(path) - 1):
            u, v = path[i], path[i + 1]
            truth.add((u, v) if u < v else (v, u))
        recovered = set(result.edge_keys)
        assert len(truth & recovered) / len(truth) > 0.8

    def test_far_samples_become_gaps(self, network):
        points = [
            Point(*network.node_coord(0), 0.0),
            Point(1e7, 1e7, 60.0),
            Point(*network.node_coord(1), 120.0),
        ]
        result = PathInferenceAttack(network).infer(Trajectory("x", points))
        assert result.candidates[1] is None
        assert result.matched_fraction == pytest.approx(2 / 3)

    def test_implausible_detours_rejected(self, network):
        """A leg whose network route is much longer than the straight
        line is treated as a gap rather than hallucinated."""
        attack = PathInferenceAttack(network, max_leg_factor=1.0)
        a = network.node_coord(0)
        b = network.node_coord(143)
        points = [Point(*a, 0.0), Point(*b, 60.0)]
        result = attack.infer(Trajectory("x", points))
        # Route/straight ratio on a jittered grid always exceeds 1.0
        # for diagonal trips, so nothing should be inferred.
        assert result.edge_keys == []

    def test_empty_trajectory(self, network):
        result = PathInferenceAttack(network).infer(Trajectory("x"))
        assert result.edge_keys == []

    def test_truncation(self, network, fleet):
        attack = PathInferenceAttack(network, max_points_per_trajectory=10)
        result = attack.infer(fleet.dataset[0])
        assert len(result.candidates) == 10


class TestDatasetRecovery:
    def test_scores_against_ground_truth(self, fleet):
        attack = PathInferenceAttack(fleet.network)
        output = attack.run(fleet.dataset)
        metrics = score_recovery(
            fleet.network, fleet.dataset, fleet.routes, output
        )
        assert metrics.recall > 0.5
        assert metrics.precision > 0.5
        assert metrics.accuracy > 0.5

    def test_comparable_to_hmm_on_clean_data(self, fleet):
        """On unperturbed data, greedy inference approaches the HMM —
        the reason the paper treats both as viable recovery attacks."""
        from repro.attacks.recovery import RecoveryAttack

        greedy = score_recovery(
            fleet.network,
            fleet.dataset,
            fleet.routes,
            PathInferenceAttack(fleet.network).run(fleet.dataset),
        )
        hmm = score_recovery(
            fleet.network,
            fleet.dataset,
            fleet.routes,
            RecoveryAttack(fleet.network).run(fleet.dataset),
        )
        assert greedy.f_score >= hmm.f_score - 0.25
