"""Tests for streaming-publish jobs in the serving daemon.

A publish job is the whole-dataset release (`repro.engine.publish`)
behind the daemon's reserve/commit/release budget protocol: one shared
ε_G TF draw across chunks plus parallel per-chunk locals, charged as
eps_G + max-per-chunk eps_L through the publish ledger — and the
spooled CSV must be byte-identical to `repro publish` on the same
inputs.
"""

import json
import time

import pytest

from repro.cli import main
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.serve.budget import BudgetStore
from repro.serve.engines import EngineCache
from repro.serve.jobs import JobRunner
from repro.trajectory.io import write_csv

GL_SPEC = {
    "kind": "gl",
    "params": {"epsilon": 1.0, "signature_size": 3, "seed": 7},
}


@pytest.fixture(scope="module")
def dataset_csv(tmp_path_factory):
    fleet = generate_fleet(
        FleetConfig(
            n_objects=8, points_per_trajectory=30, rows=8, cols=8, seed=3
        )
    )
    path = tmp_path_factory.mktemp("data") / "fleet.csv"
    write_csv(fleet.dataset, path)
    return path


@pytest.fixture
def runner(tmp_path):
    store = BudgetStore(tmp_path / "budgets")
    store.declare("acme", 8.0)
    engines = EngineCache(workers=1, executor="serial")
    runner = JobRunner(store, engines, tmp_path / "spool", workers=2)
    yield runner
    runner.close()
    engines.close()


def wait_done(runner, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = runner.get(job_id)
        if job.to_dict()["state"] in ("done", "failed"):
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never settled")


class TestPublishJobs:
    def test_publish_job_matches_cli_bytes(self, runner, dataset_csv, tmp_path):
        job = runner.submit(
            "acme", GL_SPEC, str(dataset_csv), publish={"chunk_size": 3}
        )
        snapshot = job.to_dict()
        assert snapshot["publish"] == {"chunk_size": 3}
        job = wait_done(runner, job.id)
        state = job.to_dict()
        assert state["state"] == "done", state["error"]
        assert state["eps_charged"] == pytest.approx(1.0)

        cli_out = tmp_path / "cli.csv"
        assert main(
            [
                "publish",
                "-i", str(dataset_csv),
                "-o", str(cli_out),
                "--chunk-size", "3",
                "--model", "gl",
                "--epsilon", "1.0",
                "--signature-size", "3",
                "--seed", "7",
            ]
        ) == 0
        assert job.result_path.read_bytes() == cli_out.read_bytes()

        report = job.report
        assert report["chunk_count"] == 3
        assert report["epsilon_total"] == pytest.approx(1.0)
        # eps_total = eps_G + max-per-chunk eps_L, straight from the
        # publish ledger (one sequential draw + one parallel group).
        accounting = report["accounting"]
        payload = json.dumps(accounting)
        assert payload  # JSON-serialisable end to end
        sequential = [
            d for d in accounting["draws"] if d.get("group") is None
        ]
        locals_ = [d for d in accounting["draws"] if d.get("group")]
        assert len(sequential) == 1
        assert len(locals_) == 3
        assert state["trajectories"] == 8

    def test_publish_spills_are_cleaned(self, runner, dataset_csv):
        job = runner.submit(
            "acme", GL_SPEC, str(dataset_csv), publish={"chunk_size": 3}
        )
        job = wait_done(runner, job.id)
        assert job.to_dict()["state"] == "done"
        leftovers = [
            p
            for p in runner.spool.iterdir()
            if p.suffix != ".csv"
        ]
        assert leftovers == []

    def test_publish_rejects_non_frequency_spec(self, runner, dataset_csv):
        with pytest.raises(ValueError, match="frequency-family"):
            runner.submit(
                "acme",
                {"kind": "adatrace", "params": {"epsilon": 1.0, "seed": 1}},
                str(dataset_csv),
                publish={},
            )

    def test_publish_rejects_unknown_options(self, runner, dataset_csv):
        with pytest.raises(ValueError, match="unknown publish option"):
            runner.submit(
                "acme", GL_SPEC, str(dataset_csv), publish={"workers": 4}
            )

    def test_publish_rejects_bad_chunk_size(self, runner, dataset_csv):
        with pytest.raises(ValueError, match="chunk_size"):
            runner.submit(
                "acme", GL_SPEC, str(dataset_csv), publish={"chunk_size": 0}
            )

    def test_missing_dataset_refused_before_reserving(self, runner, tmp_path):
        with pytest.raises((ValueError, FileNotFoundError, KeyError)):
            runner.submit(
                "acme", GL_SPEC, str(tmp_path / "nope.csv"),
                publish={"chunk_size": 3},
            )
        assert runner.store.account("acme").status()["reserved"] == 0.0


class TestPublishOverHTTP:
    def test_submit_and_fetch(self, dataset_csv, tmp_path):
        import urllib.request

        from repro.serve import Daemon, ServeConfig

        config = ServeConfig(
            port=0,
            budget_root=tmp_path / "budgets",
            spool=tmp_path / "spool",
            tenants=(("acme", 8.0),),
        )
        with Daemon(config) as daemon:
            host, port = daemon.address
            base = f"http://{host}:{port}"
            request = urllib.request.Request(
                f"{base}/v1/jobs",
                data=json.dumps(
                    {
                        "tenant": "acme",
                        "dataset": str(dataset_csv),
                        "spec": GL_SPEC,
                        "publish": {"chunk_size": 4},
                    }
                ).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 202
                body = json.loads(response.read())
            assert body["publish"] == {"chunk_size": 4}
            job_id = body["id"]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                with urllib.request.urlopen(
                    f"{base}/v1/jobs/{job_id}", timeout=30
                ) as response:
                    body = json.loads(response.read())
                if body["state"] in ("done", "failed"):
                    break
                time.sleep(0.02)
            assert body["state"] == "done", body["error"]
            assert body["eps_charged"] == pytest.approx(1.0)
            with urllib.request.urlopen(
                f"{base}/v1/jobs/{job_id}/result", timeout=30
            ) as response:
                payload = response.read()
            assert payload.startswith(b"object_id,t,x,y")
            rows = payload.decode().strip().splitlines()
            assert len(rows) > 8  # header + every published point
