"""The published anonymizers: PureG, PureL, and GL (Section V setup).

* :class:`PureG` — global TF randomization only (ε = ε_G);
* :class:`PureL` — local PF randomization only (ε = ε_L);
* :class:`GL` — both, composed sequentially; by Theorem 1 the total
  privacy budget is ε = ε_G + ε_L (the paper splits it evenly).

All three are thin configurations of :class:`FrequencyAnonymizer`,
which wires the mechanisms to the modification optimisers and a
:class:`~repro.core.laplace.PrivacyAccountant` that enforces the
advertised budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.global_mechanism import GlobalTFMechanism, TFPerturbation
from repro.core.laplace import PrivacyAccountant
from repro.core.local_mechanism import LocalPFMechanism, PFPerturbation
from repro.core.modification import (
    InterTrajectoryModifier,
    IntraTrajectoryModifier,
    ModificationReport,
    make_index_factory,
)
from repro.core.signature import SignatureExtractor
from repro.trajectory.model import TrajectoryDataset


@dataclass(slots=True)
class AnonymizationReport:
    """Everything observable about one anonymization run."""

    epsilon_total: float
    budget_ledger: list[tuple[str, float]] = field(default_factory=list)
    global_report: ModificationReport | None = None
    local_report: ModificationReport | None = None
    tf_perturbation: TFPerturbation | None = None
    pf_perturbations: dict[str, PFPerturbation] | None = None

    @property
    def utility_loss(self) -> float:
        total = 0.0
        if self.global_report is not None:
            total += self.global_report.utility_loss
        if self.local_report is not None:
            total += self.local_report.utility_loss
        return total

    def to_dict(self) -> dict:
        """JSON-serialisable summary of the run (for audit trails)."""

        def modification(report: ModificationReport | None) -> dict | None:
            if report is None:
                return None
            return {
                "utility_loss_m": report.utility_loss,
                "insertions": report.insertions,
                "deletions": report.deletions,
                "unrealised": report.unrealised,
            }

        return {
            "epsilon_total": self.epsilon_total,
            "budget_ledger": [
                {"mechanism": label, "epsilon": epsilon}
                for label, epsilon in self.budget_ledger
            ],
            "global": modification(self.global_report),
            "local": modification(self.local_report),
            "utility_loss_m": self.utility_loss,
            "tf_locations_perturbed": (
                len(self.tf_perturbation.perturbed)
                if self.tf_perturbation is not None
                else 0
            ),
            "trajectories_locally_perturbed": (
                len(self.pf_perturbations)
                if self.pf_perturbations is not None
                else 0
            ),
        }


class FrequencyAnonymizer:
    """Frequency-based DP anonymization for trajectory datasets.

    Parameters
    ----------
    epsilon_global, epsilon_local:
        Privacy budgets of the two mechanisms. Pass ``None`` (or 0) to
        disable a mechanism; at least one must be enabled.
    signature_size:
        ``m`` — how many signature locations are extracted per
        trajectory. The local mechanism perturbs ``2m`` locations.
    index_backend, search_strategy, levels, granularity:
        Spatial-index configuration for the modification step (see
        :func:`repro.core.modification.make_index_factory`).
    global_first:
        GL composition order. The paper notes the ordering is
        exchangeable; the default applies global then local.
    seed:
        RNG seed for reproducible noise; ``None`` draws fresh entropy.
    """

    def __init__(
        self,
        epsilon_global: float | None = 0.5,
        epsilon_local: float | None = 0.5,
        signature_size: int = 10,
        index_backend: str = "hierarchical",
        search_strategy: str = "bottom_up_down",
        trajectory_selection: str = "index",
        levels: int = 10,
        granularity: int = 512,
        global_first: bool = True,
        seed: int | None = None,
    ) -> None:
        if not epsilon_global and not epsilon_local:
            raise ValueError("at least one of the two mechanisms must be enabled")
        self.epsilon_global = epsilon_global or 0.0
        self.epsilon_local = epsilon_local or 0.0
        self.signature_size = signature_size
        self.global_first = global_first
        self.seed = seed
        self.extractor = SignatureExtractor(m=signature_size)
        factory = make_index_factory(
            backend=index_backend, levels=levels, granularity=granularity
        )
        self._intra = IntraTrajectoryModifier(factory, strategy=search_strategy)
        self._inter = InterTrajectoryModifier(
            factory,
            strategy=search_strategy,
            trajectory_selection=trajectory_selection,
        )
        self._global = (
            GlobalTFMechanism(self.epsilon_global) if self.epsilon_global else None
        )
        self._local = (
            LocalPFMechanism(self.epsilon_local, m=signature_size)
            if self.epsilon_local
            else None
        )
        self.last_report: AnonymizationReport | None = None

    @property
    def epsilon(self) -> float:
        """Total privacy budget ε = ε_G + ε_L (Theorem 1)."""
        return self.epsilon_global + self.epsilon_local

    def anonymize(self, dataset: TrajectoryDataset) -> TrajectoryDataset:
        """Produce the ε-differentially-private dataset D*.

        The input is never mutated. Details of the run are stored in
        :attr:`last_report`.
        """
        rng = random.Random(self.seed)
        accountant = PrivacyAccountant(self.epsilon)
        report = AnonymizationReport(epsilon_total=self.epsilon)

        stages = ["global", "local"] if self.global_first else ["local", "global"]
        current = dataset
        for stage in stages:
            if stage == "global" and self._global is not None:
                current = self._run_global(current, rng, accountant, report)
            elif stage == "local" and self._local is not None:
                current = self._run_local(current, rng, accountant, report)

        report.budget_ledger = accountant.ledger()
        self.last_report = report
        return current

    def _run_global(
        self,
        dataset: TrajectoryDataset,
        rng: random.Random,
        accountant: PrivacyAccountant,
        report: AnonymizationReport,
    ) -> TrajectoryDataset:
        accountant.spend("global TF randomization", self.epsilon_global)
        signature_index = self.extractor.extract(dataset)
        assert self._global is not None
        perturbation = self._global.perturb(
            signature_index.tf, len(dataset), rng
        )
        modified, modification = self._inter.apply(dataset, perturbation)
        report.tf_perturbation = perturbation
        report.global_report = modification
        return modified

    def _run_local(
        self,
        dataset: TrajectoryDataset,
        rng: random.Random,
        accountant: PrivacyAccountant,
        report: AnonymizationReport,
    ) -> TrajectoryDataset:
        accountant.spend("local PF randomization", self.epsilon_local)
        signature_index = self.extractor.extract(dataset)
        assert self._local is not None
        perturbations: dict[str, PFPerturbation] = {}
        modified = []
        total = ModificationReport()
        for trajectory in dataset:
            perturbation = self._local.perturb_trajectory(
                trajectory, signature_index, rng
            )
            perturbations[trajectory.object_id] = perturbation
            new_trajectory, modification = self._intra.apply(trajectory, perturbation)
            total.merge(modification)
            modified.append(new_trajectory)
        report.pf_perturbations = perturbations
        report.local_report = total
        return TrajectoryDataset(modified)


class PureG(FrequencyAnonymizer):
    """Global-only variant: ε-DP via TF randomization alone."""

    def __init__(self, epsilon: float = 0.5, **kwargs) -> None:
        super().__init__(epsilon_global=epsilon, epsilon_local=None, **kwargs)


class PureL(FrequencyAnonymizer):
    """Local-only variant: ε-DP via PF randomization alone."""

    def __init__(self, epsilon: float = 0.5, **kwargs) -> None:
        super().__init__(epsilon_global=None, epsilon_local=epsilon, **kwargs)


class GL(FrequencyAnonymizer):
    """The full model: global + local, ε split evenly (paper default)."""

    def __init__(self, epsilon: float = 1.0, **kwargs) -> None:
        super().__init__(
            epsilon_global=epsilon / 2.0, epsilon_local=epsilon / 2.0, **kwargs
        )
