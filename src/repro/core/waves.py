"""Wave-parallel planning/execution of the global modification stage.

The serial reference (``InterTrajectoryModifier._apply_serial``)
processes TF locations strictly one at a time: each location's
K-nearest-trajectory search runs against the index state left behind by
every earlier location's edits. That interleaving is what makes the
global stage the pipeline's hot path — every edit invalidates per-cell
segment batches that the very next search must rebuild, and nothing can
be batched.

This module splits the stage into a planner/executor pair:

* :class:`WavePlanner` walks the remaining locations *in serial order*
  and simulates each one's selection **read-only** against the current
  index snapshot, recording the decisions (which owners get edited and
  through which segments) together with the evidence the decision rests
  on. Locations are admitted into the current *wave* until the first
  conflict; the conflicting location and everything after it wait for
  the next wave, and already-simulated plans are cached and revalidated
  rather than recomputed.
* :class:`WaveExecutor` applies an admitted wave's recorded decisions —
  cheap edits, no searches — in serial order, so segment ids are
  allocated in exactly the order the serial loop would allocate them.

Wave-disjointness invariant
---------------------------

A location ``m`` may join a wave after location ``l`` only if ``l``'s
planned edits provably cannot influence ``m``'s simulated outcome:

1. **TF decreases** never read the shared index — a decrease ranks the
   trajectories containing its location by complete-deletion cost, and
   a node's deletion cost reads only its direct neighbours. Deleting
   every occurrence of ``l``'s location re-links exactly the nodes
   flanking each deleted run, so ``m`` is affected **iff** ``m``'s
   location is one of those flanking locations. The planner records the
   flanking locations each decrease *exposes*; a candidate conflicts
   when its own location is exposed by the wave so far.
2. **TF increases** consume the frontier's ascending-distance prefix
   until the Δl-th distinct eligible owner appears. The prefix — and
   hence the selection — changes only if a wave-mate (a) **removes a
   segment the prefix contained** (an insertion splits its target
   segment; tested as scanned-sid ∩ removed-sid overlap), or (b)
   **creates a segment closer than the stopping radius** (the two
   chords through the inserted point can pass nearer than any original
   segment; tested against the exact planned chord geometry with one
   vectorised distance pass behind a bounding-box prefilter).

Together with in-order execution these guarantee each executed decision
is exactly the decision the serial loop would have made, so the output
dataset — point sequences, report tallies, even the index's internal
sid allocation — is byte-identical to the serial reference. Ties at the
stopping radius are safe: newly created segments always carry larger
sids than every segment the simulation saw, and all frontier
implementations order equal distances by ascending sid.

The simulations inside one planning round run against one static
snapshot, so one batched vectorised kNN pass (``knn_batch`` — per-cell
``SegmentArray`` batches built once per chunk) answers almost every
selection, with the exact lazy frontier as the fallback for
tie-boundary cases; being read-only, the simulations can also fan out
over a thread pool (the engine's ``global_workers`` knob) without any
locking.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.geo.vectorized import SegmentArray
from repro.trajectory.model import LocationKey

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.core.edits import EditableTrajectory
    from repro.core.modification import ModificationReport
    from repro.index.base import SegmentIndex

#: A pending TF operation: (location, positive delta).
PendingOp = tuple[LocationKey, int]

#: Maps the planner's simulation function over a chunk of pending
#: operations; the engine's ``global_workers`` hook. Must preserve
#: input order. ``None`` means a plain in-process loop.
WaveMap = Callable[[Callable, Sequence], Iterable]

#: Relative slack on the stopping-radius conflict test, absorbing the
#: (at most a few ulp) difference between the scalar and vectorised
#: point-segment distance kernels. Overshooting only costs an extra
#: conflict, never correctness.
_RADIUS_RTOL = 1e-9
_RADIUS_ATOL = 1e-12


@dataclass(frozen=True, slots=True)
class PlannedOp:
    """One location's simulated decisions plus its conflict evidence."""

    loc: LocationKey
    delta: int
    #: TF increases: the ``(owner, sid)`` selections in selection
    #: order. TF decreases: ``(owner, -1)`` per chosen trajectory, in
    #: deletion order.
    choices: tuple[tuple[str, int], ...]
    #: Increases: every sid the frontier yielded before stopping — the
    #: evidence prefix the selection rests on. Empty for decreases.
    scanned_sids: frozenset[int]
    #: Increases: stopping radius of the scan — the distance of the
    #: last frontier segment consumed. ``-inf`` when nothing was
    #: scanned (no eligible owner, or a decrease), ``+inf`` when the
    #: frontier was exhausted before Δl owners appeared.
    radius: float
    #: Increases: exact segments the insertions will create, as
    #: ``(a, b)`` coordinate pairs.
    created: tuple[tuple[tuple[float, float], tuple[float, float]], ...]
    #: Decreases: locations flanking the deleted runs — the only
    #: locations whose own decrease outcomes the edits can change.
    exposed: frozenset[LocationKey]
    #: Decreases: how many trajectories contained the location at
    #: simulation time (feeds the unrealised tally).
    containing_count: int = 0


@dataclass(slots=True)
class WaveStats:
    """Diagnostics of one wave-planned run."""

    #: Waves executed (admission rounds across both phases).
    waves: int = 0
    #: Locations planned and executed.
    operations: int = 0
    #: Admissions refused (the location that ended each wave).
    conflicts: int = 0
    #: Simulations performed (== operations when every cached plan
    #: stayed valid; higher when invalidations forced re-simulation).
    simulations: int = 0
    #: Cached speculative simulations invalidated by executed waves.
    discarded: int = 0
    #: Batched-kNN simulations that hit a tie/window boundary and
    #: re-ran through the exact incremental frontier.
    fallbacks: int = 0

    @property
    def mean_wave_size(self) -> float:
        """Operations per wave: the stage's available parallelism."""
        if self.waves == 0:
            return 1.0
        return self.operations / self.waves


class _CreatedGeometry:
    """Accumulates a wave's planned new segments for proximity tests.

    Keeps a running bounding box as a cheap prefilter and rebuilds the
    vectorised :class:`SegmentArray` only when a test actually reaches
    it after new segments arrived.
    """

    def __init__(self) -> None:
        self._pairs: list[tuple[tuple[float, float], tuple[float, float]]] = []
        self._array: SegmentArray | None = None
        self._min_x = self._min_y = math.inf
        self._max_x = self._max_y = -math.inf

    def extend(
        self, pairs: Iterable[tuple[tuple[float, float], tuple[float, float]]]
    ) -> None:
        for a, b in pairs:
            self._pairs.append((a, b))
            self._array = None
            self._min_x = min(self._min_x, a[0], b[0])
            self._min_y = min(self._min_y, a[1], b[1])
            self._max_x = max(self._max_x, a[0], b[0])
            self._max_y = max(self._max_y, a[1], b[1])

    def intrudes(self, loc: LocationKey, radius: float) -> bool:
        """Does any accumulated segment come within ``radius`` of ``loc``?"""
        if not self._pairs or radius == -math.inf:
            return False
        slack = _RADIUS_RTOL * max(1.0, abs(radius)) + _RADIUS_ATOL
        if radius != math.inf:
            # Bounding-box prefilter: the cheap common case.
            dx = max(self._min_x - loc[0], loc[0] - self._max_x, 0.0)
            dy = max(self._min_y - loc[1], loc[1] - self._max_y, 0.0)
            if math.hypot(dx, dy) > radius + slack:
                return False
        if self._array is None:
            self._array = SegmentArray.from_pairs(self._pairs)
        return self._array.min_distance_to(loc) <= radius + slack


class _WaveFootprint:
    """Everything an admitted wave's edits can touch, accumulated."""

    def __init__(self) -> None:
        self.removed_sids: set[int] = set()
        self.created = _CreatedGeometry()
        self.exposed: set[LocationKey] = set()

    def admit(self, plan: PlannedOp) -> None:
        if plan.created:
            self.removed_sids.update(sid for _, sid in plan.choices)
            self.created.extend(plan.created)
        self.exposed |= plan.exposed

    def conflicts(self, plan: PlannedOp) -> bool:
        """May the accumulated edits influence ``plan``'s outcome?"""
        if plan.loc in self.exposed:
            return True
        if not plan.scanned_sids.isdisjoint(self.removed_sids):
            return True
        return self.created.intrudes(plan.loc, plan.radius)


class WavePlanner:
    """Plans conflict-free waves by read-only simulation.

    Parameters
    ----------
    shared_index, editables:
        The live global-stage state (never mutated by the planner).
    strategy:
        Hierarchical-grid search strategy for the batched kNN
        simulations (matches the modifier's configured strategy).
    wave_map:
        Optional order-preserving map used to fan a chunk's
        simulations over a pool; simulations are read-only, so a
        thread pool is safe.
    chunk_size:
        How many pending locations are simulated speculatively per
        admission round. Larger chunks amortise the batched index
        surface better; over-simulated plans are cached and
        revalidated, not discarded, so the cost of overshooting is
        low.
    """

    def __init__(
        self,
        shared_index: "SegmentIndex",
        editables: dict[str, "EditableTrajectory"],
        strategy: str = "bottom_up_down",
        wave_map: WaveMap | None = None,
        chunk_size: int = 32,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.shared_index = shared_index
        self.editables = editables
        self.strategy = strategy
        self.wave_map = wave_map
        self.chunk_size = chunk_size
        self.stats = WaveStats()
        #: Guards the one counter simulations update from wave_map
        #: worker threads (every other stat is driver-thread-only).
        self._stats_lock = threading.Lock()
        #: Guards the lazy containment-map build: simulations running
        #: under wave_map all call :meth:`_containing_map`, and the
        #: first one in a phase would otherwise race the build.
        self._containing_lock = threading.Lock()
        #: Simulations not admitted into the wave they were computed
        #: for. A cached plan stays valid as long as every executed
        #: wave since keeps passing the conflict test against it —
        #: exactly the admission invariant — so most locations are
        #: simulated once even when conflicts cut waves short.
        self._cache: dict[LocationKey, PlannedOp] = {}
        self._cache_kind: str | None = None
        #: The wave most recently handed to the executor; its edits
        #: are validated against the cache on the next planning call.
        self._last_wave: list[PlannedOp] = []
        #: Phase-scoped inverted containment map: location -> owner ids
        #: (in dataset order). Valid for a whole phase because a
        #: still-pending location's containment can only be changed by
        #: its *own* operation: decreases delete only their own
        #: location's occurrences, increases insert only their own.
        self._containing_by_loc: dict[LocationKey, list[str]] | None = None

    # -- public driver ---------------------------------------------------------

    def plan_wave(
        self, kind: str, pending: list[PendingOp]
    ) -> tuple[list[PlannedOp], list[PendingOp]]:
        """The next wave: a maximal conflict-free serial-order prefix.

        Returns ``(wave, still_pending)``. The caller must execute the
        returned wave before asking for the next one — the planner
        revalidates its speculation cache against those edits. The
        first pending location is always admitted, so progress is
        guaranteed; in the worst case (every location conflicting with
        its predecessor) the stage degenerates gracefully into the
        serial per-location loop.
        """
        if kind not in ("decrease", "increase"):
            raise ValueError(f"unknown operation kind {kind!r}")
        self._revalidate_cache(kind)
        admitted: list[PlannedOp] = []
        footprint = _WaveFootprint()
        index = 0
        while index < len(pending):
            chunk = pending[index : index + self.chunk_size]
            for plan in self._plan_chunk(kind, chunk):
                if admitted and footprint.conflicts(plan):
                    # The wave ends here. This plan is stale (it saw
                    # none of the wave's edits) but its chunk-mates
                    # were simulated against the same snapshot and are
                    # still unjudged: they stay cached for the next
                    # round.
                    self.stats.conflicts += 1
                    self._cache.pop(plan.loc, None)
                    self.stats.waves += 1
                    self._last_wave = admitted
                    return admitted, pending[index:]
                admitted.append(plan)
                self.stats.operations += 1
                self._cache.pop(plan.loc, None)
                footprint.admit(plan)
                index += 1
        self.stats.waves += 1
        self._last_wave = admitted
        return admitted, []

    def _revalidate_cache(self, kind: str) -> None:
        """Drop cached plans the last executed wave may have staled."""
        if kind != self._cache_kind:
            self._cache.clear()
            self._cache_kind = kind
            self._containing_by_loc = None  # rebuilt on phase entry
        wave, self._last_wave = self._last_wave, []
        if not wave or not self._cache:
            return
        footprint = _WaveFootprint()
        for plan in wave:
            footprint.admit(plan)
        for loc in list(self._cache):
            if footprint.conflicts(self._cache[loc]):
                del self._cache[loc]
                self.stats.discarded += 1

    def _plan_chunk(self, kind: str, chunk: list[PendingOp]) -> Iterator[PlannedOp]:
        """Plans for a chunk: cached where valid, simulated otherwise.

        Fresh simulations land in the cache first and are popped on
        admission, so chunk members past a wave-ending conflict are
        retained for later rounds instead of being thrown away.
        """
        missing = [op for op in chunk if op[0] not in self._cache]
        if missing:
            for op, plan in zip(
                missing, self._simulate_chunk(kind, missing), strict=True
            ):
                self._cache[op[0]] = plan
        return iter([self._cache[loc] for loc, _ in chunk])

    # -- simulation --------------------------------------------------------------

    def _simulate_chunk(
        self, kind: str, chunk: list[PendingOp]
    ) -> Iterable[PlannedOp]:
        self.stats.simulations += len(chunk)
        self._containing_map()  # built in the driving thread, not under wave_map
        if kind == "decrease":
            jobs: Sequence = chunk
            simulate = self._simulate_decrease
        else:
            from repro.core.modification import search_knn_batch

            # One batched vectorised kNN pass answers (almost) every
            # simulation in the chunk: the chunk shares one static
            # snapshot, so per-cell segment batches are built once and
            # the per-query scans reduce to walking a sorted hit list.
            # Queries whose answer cannot be proven prefix-exact from
            # the k hits fall back to the exact frontier inside
            # :meth:`_simulate_increase`.
            k = max(16, 4 * max(delta for _, delta in chunk))
            hit_lists = search_knn_batch(
                self.shared_index, [loc for loc, _ in chunk], k, self.strategy
            )
            jobs = [
                (op, hits, k)
                for op, hits in zip(chunk, hit_lists, strict=True)
            ]
            simulate = self._simulate_increase
        if self.wave_map is None or len(jobs) <= 1:
            return [simulate(job) for job in jobs]
        return self.wave_map(simulate, jobs)

    def _containing_map(self) -> dict[LocationKey, list[str]]:
        """The phase's inverted containment map, built on first use.

        One pass over every trajectory's distinct locations replaces a
        full-dataset membership scan per simulation. Double-checked
        under a lock: the driving thread pre-builds it per chunk, but
        wave_map workers may still race a cold phase entry.
        """
        existing = self._containing_by_loc
        if existing is not None:
            return existing
        with self._containing_lock:
            if self._containing_by_loc is None:
                mapping: dict[LocationKey, list[str]] = {}
                for object_id, editable in self.editables.items():
                    for loc in editable.locations():
                        mapping.setdefault(loc, []).append(object_id)
                self._containing_by_loc = mapping
            return self._containing_by_loc

    def _simulate_decrease(self, op: PendingOp) -> PlannedOp:
        """Rank complete-deletion costs exactly like the serial loop."""
        loc, delta = op
        # Dataset order in, stable sort — identical ranking to the
        # serial loop's rank_containing().
        containing = [
            self.editables[object_id]
            for object_id in self._containing_map().get(loc, ())
        ]
        containing.sort(key=lambda e: e.complete_deletion_cost(loc))
        chosen = containing[:delta]
        exposed: set[LocationKey] = set()
        for editable in chosen:
            exposed |= editable.adjacent_locations(loc)
        return PlannedOp(
            loc=loc,
            delta=delta,
            choices=tuple((e.object_id, -1) for e in chosen),
            scanned_sids=frozenset(),
            radius=-math.inf,
            created=(),
            exposed=frozenset(exposed),
            containing_count=len(containing),
        )

    def _simulate_increase(self, job) -> PlannedOp:
        """Select from a batched kNN hit list, frontier on ambiguity.

        A ``knn`` result sorted by ``(distance, sid)`` contains *every*
        segment strictly closer than its k-th distance, in exactly the
        order the incremental frontier yields them — so as long as the
        Δl-th owner is found strictly inside that boundary (or the
        hit list already exhausts the index), the selection, the
        scanned-prefix evidence, and the stopping radius are provably
        identical to the serial reference. Only the rare boundary
        cases (stop at the k-th distance, or more than k hits needed)
        re-run through the exact frontier.
        """
        (loc, delta), hits, requested_k = job
        # Owners already passing through the location are ineligible;
        # everything else is fair game. The phase-level inverted map
        # replaces a full-dataset membership scan per simulation.
        ineligible = set(self._containing_map().get(loc, ()))
        if len(ineligible) >= len(self.editables):
            return PlannedOp(
                loc=loc,
                delta=delta,
                choices=(),
                scanned_sids=frozenset(),
                radius=-math.inf,
                created=(),
                exposed=frozenset(),
            )
        k = requested_k
        while True:
            plan = self._select_from_hits(
                loc, delta, ineligible, hits, exhaustive=len(hits) < k
            )
            if plan is not None:
                return plan
            # Boundary-ambiguous (stop landed on the k-th distance) or
            # window too small: rescan wider. The rescan terminates —
            # once k covers the whole index the scan is exhaustive and
            # always prefix-exact.
            from repro.core.modification import search_knn

            with self._stats_lock:
                self.stats.fallbacks += 1
            k *= 4
            hits = search_knn(self.shared_index, loc, k, self.strategy)

    def _select_from_hits(
        self,
        loc: LocationKey,
        delta: int,
        ineligible: set[str],
        hits: list[tuple[int, float]],
        exhaustive: bool,
    ) -> PlannedOp | None:
        """A plan from a sorted hit list, or None when not prefix-exact."""
        chosen: dict[str, int] = {}
        scanned: set[int] = set()
        radius = math.inf  # an exhausted scan covers everything
        stop_distance = None
        for sid, dist in hits:
            scanned.add(sid)
            owner = self.shared_index.segment(sid).owner
            if owner not in ineligible and owner not in chosen:
                chosen[owner] = sid
                if len(chosen) >= delta:
                    stop_distance = dist
                    break
        if stop_distance is not None:
            if not exhaustive and stop_distance >= hits[-1][1]:
                return None
            radius = stop_distance
        elif not exhaustive:
            # Fewer than Δl owners within the window, but the index
            # holds more segments.
            return None
        return self._finish_increase_plan(loc, delta, chosen, scanned, radius)

    def _finish_increase_plan(
        self,
        loc: LocationKey,
        delta: int,
        chosen: dict[str, int],
        scanned: set[int],
        radius: float,
    ) -> PlannedOp:
        created = []
        for sid in chosen.values():
            segment = self.shared_index.segment(sid)
            created.append((segment.a, loc))
            created.append((loc, segment.b))
        return PlannedOp(
            loc=loc,
            delta=delta,
            choices=tuple(chosen.items()),
            scanned_sids=frozenset(scanned),
            radius=radius,
            created=tuple(created),
            exposed=frozenset(),
        )


class WaveExecutor:
    """Applies planned waves in serial order (cheap edits, no searches)."""

    def __init__(
        self,
        shared_index: "SegmentIndex",
        editables: dict[str, "EditableTrajectory"],
    ) -> None:
        self.shared_index = shared_index
        self.editables = editables

    def apply_wave(
        self, kind: str, wave: Sequence[PlannedOp], report: "ModificationReport"
    ) -> None:
        """Apply every planned operation, merging into ``report``.

        Operations run in wave (= serial) order and each one reuses
        the exact application helper the serial loop uses, so edit
        order, sid allocation, and float accumulation all match the
        reference byte for byte.
        """
        from repro.core.modification import (
            apply_decrease_selection,
            apply_increase_selection,
        )

        for plan in wave:
            if kind == "decrease":
                report.merge(
                    apply_decrease_selection(
                        self.editables,
                        plan.loc,
                        plan.delta,
                        [owner for owner, _ in plan.choices],
                        plan.containing_count,
                    )
                )
            elif plan.radius != -math.inf:
                report.merge(
                    apply_increase_selection(
                        self.shared_index,
                        self.editables,
                        plan.loc,
                        plan.delta,
                        plan.choices,
                    )
                )
            else:
                # No eligible trajectory existed at planning time; the
                # serial loop books the whole delta as unrealised.
                report.unrealised += plan.delta
