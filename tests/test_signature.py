"""Tests for signature extraction (PF/TF weights, top-m, candidate set)."""

import random
from collections import Counter

import pytest

from repro.core.signature import (
    SignatureExtractor,
    select_perturbation_targets,
)
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset


def traj(object_id, coords):
    return Trajectory(
        object_id,
        [Point(float(x), float(y), 60.0 * i) for i, (x, y) in enumerate(coords)],
    )


@pytest.fixture
def dataset():
    """Three users; (0,0) is a shared hotspot, each has a private home.

    User a's home (1,1) is visited 3 times; user b's home (2,2) twice;
    user c never dwells anywhere private.
    """
    return TrajectoryDataset(
        [
            traj("a", [(1, 1), (0, 0), (1, 1), (5, 5), (1, 1)]),
            traj("b", [(2, 2), (0, 0), (2, 2), (6, 6)]),
            traj("c", [(0, 0), (7, 7), (8, 8)]),
        ]
    )


class TestSignatureExtractor:
    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            SignatureExtractor(m=0)

    def test_weights_favor_private_frequent_locations(self, dataset):
        extractor = SignatureExtractor(m=2)
        tf = dataset.trajectory_frequencies()
        weights = extractor.weights(dataset[0], tf, len(dataset))
        # Home (1,1): PF=3, TF=1 -> strongly weighted.
        # Hotspot (0,0): TF=3 = |D| -> log(1) = 0 weight.
        assert weights[(1.0, 1.0)] > weights[(5.0, 5.0)]
        assert weights[(0.0, 0.0)] == pytest.approx(0.0)

    def test_signature_of_orders_by_weight(self, dataset):
        extractor = SignatureExtractor(m=2)
        tf = dataset.trajectory_frequencies()
        entries = extractor.signature_of(dataset[0], tf, len(dataset))
        assert entries[0].loc == (1.0, 1.0)
        assert entries[0].point_frequency == 3
        assert entries[0].trajectory_frequency == 1
        assert len(entries) == 2
        assert entries[0].weight >= entries[1].weight

    def test_signature_shorter_than_m_for_tiny_trajectory(self):
        extractor = SignatureExtractor(m=10)
        ds = TrajectoryDataset([traj("a", [(0, 0), (1, 1)])])
        tf = ds.trajectory_frequencies()
        entries = extractor.signature_of(ds[0], tf, 1)
        assert len(entries) == 2

    def test_empty_trajectory(self):
        extractor = SignatureExtractor(m=3)
        assert extractor.weights(Trajectory("x"), Counter(), 1) == {}

    def test_extract_builds_candidate_set(self, dataset):
        index = SignatureExtractor(m=2).extract(dataset)
        assert index.m == 2
        assert set(index.signatures) == {"a", "b", "c"}
        # Every signature location must be in P.
        for entries in index.signatures.values():
            for entry in entries:
                assert entry.loc in index.candidate_set
        assert index.dimensionality == len(index.candidate_set)
        # TF restricted to P matches the dataset TF.
        tf = dataset.trajectory_frequencies()
        for loc, value in index.tf.items():
            assert value == tf[loc]

    def test_dimensionality_bounded_by_m_times_n(self, dataset):
        index = SignatureExtractor(m=2).extract(dataset)
        assert index.dimensionality <= 2 * len(dataset)

    def test_deterministic(self, dataset):
        a = SignatureExtractor(m=2).extract(dataset)
        b = SignatureExtractor(m=2).extract(dataset)
        assert a.signatures == b.signatures

    def test_signature_locations_helper(self, dataset):
        index = SignatureExtractor(m=2).extract(dataset)
        locs = index.signature_locations("a")
        assert locs[0] == (1.0, 1.0)


class TestSelectPerturbationTargets:
    def test_signature_first(self, dataset):
        index = SignatureExtractor(m=2).extract(dataset)
        rng = random.Random(0)
        targets = select_perturbation_targets(
            dataset[0], index.signatures["a"], index.candidate_set, 2, rng
        )
        assert targets[0] == (1.0, 1.0)
        assert len(targets) <= 4
        assert len(set(targets)) == len(targets)  # no duplicates

    def test_prefers_candidate_set_members(self):
        # Build a dataset where user a's trajectory contains user b's
        # signature location (3,3), which therefore sits in P.
        ds = TrajectoryDataset(
            [
                traj("a", [(1, 1), (1, 1), (3, 3), (4, 4), (5, 5)]),
                traj("b", [(3, 3), (3, 3), (3, 3), (9, 9)]),
                traj("c", [(8, 8), (8, 8), (6, 6)]),
            ]
        )
        index = SignatureExtractor(m=1).extract(ds)
        assert (3.0, 3.0) in index.candidate_set
        rng = random.Random(0)
        targets = select_perturbation_targets(
            ds[0], index.signatures["a"], index.candidate_set, 1, rng
        )
        assert len(targets) == 2
        assert targets[0] == (1.0, 1.0)  # own signature first
        assert targets[1] == (3.0, 3.0)  # then trajectory locations in P

    def test_caps_at_distinct_locations(self):
        ds = TrajectoryDataset([traj("a", [(0, 0), (0, 0), (1, 1)])])
        index = SignatureExtractor(m=5).extract(ds)
        rng = random.Random(0)
        targets = select_perturbation_targets(
            ds[0], index.signatures["a"], index.candidate_set, 5, rng
        )
        assert len(targets) == 2  # only two distinct locations exist

    def test_deterministic_given_seed(self, dataset):
        index = SignatureExtractor(m=2).extract(dataset)
        t1 = select_perturbation_targets(
            dataset[0], index.signatures["a"], index.candidate_set, 2, random.Random(9)
        )
        t2 = select_perturbation_targets(
            dataset[0], index.signatures["a"], index.candidate_set, 2, random.Random(9)
        )
        assert t1 == t2
