"""W4M: (k, δ)-anonymity via clustering and spatial perturbation [7].

Trajectories are greedily clustered into groups of at least ``k`` using
the spatiotemporal edit distance (the measure the W4M paper adopts over
NWA's Euclidean cylinder matching). Within each cluster every member is
then warped toward the cluster pivot so that, at aligned positions, all
members co-locate within a cylinder of radius δ — making each
trajectory indistinguishable from its k-1 cluster mates at radius δ
while staying as close to its original shape as possible.
"""

from __future__ import annotations

from repro.trajectory.distance import (
    spatiotemporal_edit_distance,
    synchronized_distance,
)
from repro.geo.geometry import point_distance
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset


class _NearestPointMatcher:
    """Grid-bucketed nearest-point queries against one trajectory.

    ``nearest`` returns the closest sample within one bucket ring (i.e.
    within roughly ``cell`` metres) or None — exactly the "is there a
    matchable pivot sample nearby" question W4M's alignment asks.
    """

    def __init__(self, trajectory: Trajectory, cell: float) -> None:
        self._cell = max(cell, 1.0)
        self._buckets: dict[tuple[int, int], list[tuple[float, float]]] = {}
        for p in trajectory:
            key = (int(p.x // self._cell), int(p.y // self._cell))
            self._buckets.setdefault(key, []).append(p.coord)

    def nearest(self, coord: tuple[float, float]) -> tuple[float, float] | None:
        cx = int(coord[0] // self._cell)
        cy = int(coord[1] // self._cell)
        best = None
        best_gap = float("inf")
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for candidate in self._buckets.get((cx + dx, cy + dy), ()):
                    gap = point_distance(coord, candidate)
                    if gap < best_gap:
                        best_gap = gap
                        best = candidate
        return best


class W4M:
    """(k, δ)-anonymity for trajectory datasets."""

    def __init__(
        self,
        k: int = 5,
        delta: float = 300.0,
        band: int = 32,
        prefilter_factor: int = 4,
    ) -> None:
        if k < 2:
            raise ValueError("k must be at least 2")
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self.k = k
        self.delta = delta
        self.band = band
        #: The expensive edit distance is only evaluated against the
        #: ``prefilter_factor * k`` candidates closest by the cheap
        #: synchronized distance — the standard coarse-to-fine trick.
        self.prefilter_factor = prefilter_factor

    # -- clustering ---------------------------------------------------------------

    def _clusters(self, dataset: TrajectoryDataset) -> list[list[int]]:
        """Greedy k-member clustering by spatiotemporal edit distance."""
        n = len(dataset)
        unassigned = list(range(n))
        clusters: list[list[int]] = []
        while len(unassigned) >= self.k:
            pivot = unassigned.pop(0)
            shortlist = sorted(
                unassigned,
                key=lambda j: synchronized_distance(dataset[pivot], dataset[j]),
            )[: max(self.prefilter_factor * self.k, self.k - 1)]
            scored = sorted(
                shortlist,
                key=lambda j: spatiotemporal_edit_distance(
                    dataset[pivot], dataset[j], band=self.band
                ),
            )
            members = [pivot] + scored[: self.k - 1]
            for j in members[1:]:
                unassigned.remove(j)
            clusters.append(members)
        if unassigned:
            if clusters:
                clusters[-1].extend(unassigned)
            else:
                clusters.append(list(unassigned))
        return clusters

    # -- perturbation -----------------------------------------------------------------

    def _warp_to_pivot(
        self, member: Trajectory, pivot: Trajectory
    ) -> Trajectory:
        """Enforce the δ-cylinder against ``pivot``, NWA/W4M style.

        W4M's edit-distance alignment matches each member sample to a
        nearby pivot sample; we model that with spatial nearest-point
        matching. Samples already within δ of some pivot sample are
        untouched (minimal distortion); samples within the matchable
        band (≤ 2δ) are translated onto the δ boundary of their match;
        samples W4M cannot co-locate are suppressed rather than
        teleported. The published trajectory therefore stays close to
        the original wherever it keeps anything at all — which is
        exactly why W4M stays fairly linkable yet its slightly off-road
        geometry resists map-matching recovery.
        """
        if len(pivot) == 0 or len(member) == 0:
            return member.copy()
        matcher = _NearestPointMatcher(pivot, cell=2.0 * self.delta)
        points: list[Point] = []
        for point in member:
            anchor = matcher.nearest(point.coord)
            if anchor is None:
                continue  # suppressed: nothing matchable nearby
            gap = point_distance(point.coord, anchor)
            if gap <= self.delta:
                points.append(point)
            elif gap <= 2.0 * self.delta:
                scale = self.delta / gap
                points.append(
                    Point(
                        anchor[0] + (point.x - anchor[0]) * scale,
                        anchor[1] + (point.y - anchor[1]) * scale,
                        point.t,
                    )
                )
            # else: suppressed
        return Trajectory(member.object_id, points)

    def anonymize(self, dataset: TrajectoryDataset) -> TrajectoryDataset:
        if len(dataset) == 0:
            return dataset.copy()
        clusters = self._clusters(dataset)
        output: dict[str, Trajectory] = {}
        for members in clusters:
            pivot = dataset[members[0]]
            for index in members:
                member = dataset[index]
                output[member.object_id] = self._warp_to_pivot(member, pivot)
        return TrajectoryDataset(
            output[trajectory.object_id] for trajectory in dataset
        )
