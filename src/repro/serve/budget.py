"""Per-tenant epsilon budget accounts for the serving daemon.

A *tenant* is a named consumer of DP releases with a **declared epsilon
budget**: the total privacy loss the data owner is willing to grant
that consumer across every request they will ever make. The daemon
refuses a job whose worst-case spend does not fit in the tenant's
remaining budget — that is what "serving DP releases" means
operationally, and it is the piece no single-run accountant provides.

Each tenant's account is one **append-only JSONL file** under the
budget root (``<root>/<tenant>.account.jsonl``). The first line
declares the budget; every later line is one of three events in a
job's life:

``reserve``
    Admission control: the job's worst-case ``eps_total`` is set aside
    *before* execution, so two concurrent requests can never both be
    admitted against the same remaining budget.
``commit``
    The job succeeded. The entry embeds the run's full
    :class:`~repro.core.accounting.CompositionLedger` JSON, so the
    account file carries its own auditable per-draw accounting, and the
    *actual* composed spend (never more than the reservation; it may be
    less, e.g. a disabled stage) is what the tenant is charged.
``release``
    The job failed before producing a release; the reservation returns
    to the tenant.

Replaying the file rebuilds the account and **re-validates every
invariant**: the ledger of each commit must round-trip (a tampered or
truncated ledger is rejected by
:meth:`CompositionLedger.from_dict`), commits must match their
reservations, and the running total may never exceed the declared
budget. A file that breaks any of these raises :class:`AccountError`
instead of silently loading — tampering cannot survive a restart.

Crash recovery is **conservative**: a reservation with no commit and
no release (the daemon died mid-job) may have drawn noise before the
crash, so :meth:`BudgetStore.recover` charges it in full (a commit
entry with ``ledger: null``) rather than refunding epsilon that may
already have leaked. Refusing to guess is the only sound direction.

Concurrency: all mutating operations on one account are serialized by
a per-tenant lock, and the admission check and the reservation append
happen under the same lock acquisition — so N racing requests can
never jointly commit more than the declared budget (property-tested).
The store assumes a single daemon process owns the budget root.
"""

from __future__ import annotations

import json
import math
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.core.accounting import CompositionLedger

__all__ = [
    "ACCOUNT_SUFFIX",
    "AccountError",
    "BudgetExceededError",
    "BudgetStore",
    "TenantAccount",
    "UnknownTenantError",
]

#: Account files are ``<tenant><ACCOUNT_SUFFIX>`` under the budget root.
ACCOUNT_SUFFIX = ".account.jsonl"

#: Slack for float comparisons between a commit and its reservation.
_TOLERANCE = 1e-9


class AccountError(ValueError):
    """An account file is malformed, tampered with, or oversubscribed."""


class UnknownTenantError(KeyError):
    """No account is declared for the named tenant."""

    def __init__(self, tenant: str) -> None:
        super().__init__(tenant)
        self.tenant = tenant

    def __str__(self) -> str:
        return (
            f"no budget account declared for tenant {self.tenant!r}; "
            f"declare one before submitting jobs"
        )


class BudgetExceededError(Exception):
    """Admission refused: the job does not fit the remaining budget.

    Carries the structured refusal contract the daemon serializes as
    its 429-style response body (:meth:`to_dict`).
    """

    def __init__(
        self, tenant: str, requested: float, remaining: float, budget: float
    ) -> None:
        super().__init__(
            f"tenant {tenant!r} requested eps={requested:g} but only "
            f"{remaining:g} of the declared budget {budget:g} remains"
        )
        self.tenant = tenant
        self.requested = requested
        self.remaining = remaining
        self.budget = budget

    def to_dict(self) -> dict:
        return {
            "error": "budget-exhausted",
            "tenant": self.tenant,
            "requested": self.requested,
            "remaining": self.remaining,
            "budget": self.budget,
        }


def _validate_budget(budget: float, tenant: str) -> float:
    budget = float(budget)
    if math.isnan(budget) or math.isinf(budget) or budget <= 0.0:
        raise AccountError(
            f"tenant {tenant!r} budget must be a positive finite epsilon, "
            f"got {budget!r}"
        )
    return budget


def _validate_epsilon(epsilon: float, label: str) -> float:
    epsilon = float(epsilon)
    if math.isnan(epsilon) or math.isinf(epsilon) or epsilon <= 0.0:
        raise AccountError(
            f"{label} must reserve a positive finite epsilon, got {epsilon!r}"
        )
    return epsilon


@dataclass
class TenantAccount:
    """One tenant's replayed account state plus its append log.

    Mutate only through :class:`BudgetStore` — the store wraps every
    mutation in :attr:`lock`, and the admission check shares that
    acquisition with the reservation append (the no-overspend
    invariant).
    """

    tenant: str
    budget: float
    path: Path
    #: ``job -> reserved epsilon`` of jobs admitted but not yet settled.
    pending: dict = field(default_factory=dict)
    #: ``job -> charged epsilon`` of settled (committed) jobs.
    committed: dict = field(default_factory=dict)
    #: Jobs whose reservations were released (failures), with reasons.
    released: dict = field(default_factory=dict)
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def spent(self) -> float:
        """Epsilon charged by committed jobs."""
        return sum(self.committed.values())

    @property
    def reserved(self) -> float:
        """Epsilon held by in-flight reservations."""
        return sum(self.pending.values())

    @property
    def remaining(self) -> float:
        """What a new reservation may still claim."""
        return self.budget - self.spent - self.reserved

    def status(self) -> dict:
        """JSON-serialisable account summary (the daemon's tenant view)."""
        return {
            "tenant": self.tenant,
            "budget": self.budget,
            "spent": self.spent,
            "reserved": self.reserved,
            "remaining": self.remaining,
            "jobs": {
                "pending": sorted(self.pending),
                "committed": sorted(self.committed),
                "released": sorted(self.released),
            },
        }

    # -- append log ---------------------------------------------------------

    def _append(self, entry: Mapping) -> None:
        """Durably append one event line (fsync'd: recovery reads this)."""
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with self.path.open("a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # -- replay -------------------------------------------------------------

    @classmethod
    def load(cls, tenant: str, path: Path) -> "TenantAccount":
        """Replay an account file, re-validating every invariant."""
        lines = [
            (number, line)
            for number, line in enumerate(
                path.read_text().splitlines(), start=1
            )
            if line.strip()
        ]
        if not lines:
            raise AccountError(f"{path}: empty account file")

        def entry_of(number: int, line: str) -> dict:
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise AccountError(f"{path}:{number}: invalid JSON: {exc}") from exc
            if not isinstance(payload, dict) or "kind" not in payload:
                raise AccountError(
                    f"{path}:{number}: entry must be an object with a 'kind'"
                )
            return payload

        first = entry_of(*lines[0])
        if first["kind"] != "declare" or first.get("tenant") != tenant:
            raise AccountError(
                f"{path}:1: first entry must declare tenant {tenant!r}, "
                f"got {first!r}"
            )
        account = cls(
            tenant=tenant,
            budget=_validate_budget(first.get("budget"), tenant),
            path=path,
        )
        for number, line in lines[1:]:
            entry = entry_of(number, line)
            account._replay(entry, f"{path}:{number}")
        return account

    def _replay(self, entry: Mapping, where: str) -> None:
        kind = entry["kind"]
        job = entry.get("job")
        if not job or not isinstance(job, str):
            raise AccountError(f"{where}: {kind} entry names no job")
        if kind == "reserve":
            # A released job id may be re-reserved (a retried request);
            # a pending or committed one may not.
            if job in self.pending or job in self.committed:
                raise AccountError(f"{where}: duplicate reservation for {job!r}")
            epsilon = _validate_epsilon(
                entry.get("epsilon"), f"{where}: reservation {job!r}"
            )
            if epsilon > self.remaining + _TOLERANCE:
                raise AccountError(
                    f"{where}: reservation {job!r} (eps={epsilon:g}) "
                    f"oversubscribes the declared budget {self.budget:g} "
                    f"(remaining {self.remaining:g})"
                )
            self.pending[job] = epsilon
        elif kind == "commit":
            if job not in self.pending:
                raise AccountError(
                    f"{where}: commit for {job!r} without a live reservation"
                )
            reserved = self.pending[job]
            charged = _validate_epsilon(
                entry.get("epsilon"), f"{where}: commit {job!r}"
            )
            ledger_payload = entry.get("ledger")
            if ledger_payload is not None:
                try:
                    ledger = CompositionLedger.from_dict(ledger_payload)
                except (ValueError, KeyError, TypeError) as exc:
                    raise AccountError(
                        f"{where}: commit {job!r} carries a ledger that "
                        f"does not round-trip: {exc}"
                    ) from exc
                if not math.isclose(
                    ledger.epsilon_total, charged, rel_tol=1e-9, abs_tol=1e-9
                ):
                    raise AccountError(
                        f"{where}: commit {job!r} charges eps={charged:g} "
                        f"but its ledger composes to "
                        f"{ledger.epsilon_total:g}"
                    )
            if charged > reserved + _TOLERANCE:
                raise AccountError(
                    f"{where}: commit {job!r} charges eps={charged:g}, "
                    f"more than its reservation {reserved:g}"
                )
            del self.pending[job]
            self.committed[job] = charged
        elif kind == "release":
            if job not in self.pending:
                raise AccountError(
                    f"{where}: release for {job!r} without a live reservation"
                )
            del self.pending[job]
            self.released[job] = str(entry.get("reason") or "")
        else:
            raise AccountError(f"{where}: unknown entry kind {kind!r}")


class BudgetStore:
    """Disk-backed registry of tenant budget accounts.

    One instance per daemon; accounts are loaded lazily and cached, and
    every mutation holds the account's lock across both the admission
    check and the durable append.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._accounts: dict[str, TenantAccount] = {}
        self._lock = threading.Lock()

    def account_path(self, tenant: str) -> Path:
        if (
            not tenant
            or tenant in (".", "..")
            or "/" in tenant
            or os.sep in tenant
            or (os.altsep and os.altsep in tenant)
            or tenant.startswith(".")
        ):
            raise AccountError(
                f"tenant name {tenant!r} is not a plain path segment"
            )
        return self.root / f"{tenant}{ACCOUNT_SUFFIX}"

    def tenants(self) -> list[str]:
        """Every tenant with a declared account, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name[: -len(ACCOUNT_SUFFIX)]
            for p in self.root.iterdir()
            if p.name.endswith(ACCOUNT_SUFFIX)
        )

    # -- account access -----------------------------------------------------

    def account(self, tenant: str) -> TenantAccount:
        """The cached (or replayed-from-disk) account of ``tenant``."""
        with self._lock:
            cached = self._accounts.get(tenant)
            if cached is not None:
                return cached
            path = self.account_path(tenant)
            if not path.is_file():
                raise UnknownTenantError(tenant)
            account = TenantAccount.load(tenant, path)
            self._accounts[tenant] = account
            return account

    def declare(self, tenant: str, budget: float) -> TenantAccount:
        """Create (or re-open) the account of ``tenant``.

        Declaring an existing tenant is idempotent when the budget
        matches; a *different* budget is refused — raising a tenant's
        budget is a new privacy decision that must not happen as a
        side effect of a restart.
        """
        path = self.account_path(tenant)
        with self._lock:
            existing = self._accounts.get(tenant)
            if existing is None and path.is_file():
                existing = TenantAccount.load(tenant, path)
                self._accounts[tenant] = existing
            if existing is not None:
                if not math.isclose(
                    existing.budget, float(budget), rel_tol=1e-9, abs_tol=1e-9
                ):
                    raise AccountError(
                        f"tenant {tenant!r} already declared with budget "
                        f"{existing.budget:g}; refusing to re-declare as "
                        f"{float(budget):g}"
                    )
                return existing
            budget = _validate_budget(budget, tenant)
            self.root.mkdir(parents=True, exist_ok=True)
            account = TenantAccount(tenant=tenant, budget=budget, path=path)
            account._append(
                {"kind": "declare", "tenant": tenant, "budget": budget}
            )
            self._accounts[tenant] = account
            return account

    # -- the reserve / commit / release protocol ----------------------------

    def reserve(self, tenant: str, job: str, epsilon: float) -> None:
        """Admit ``job`` by setting ``epsilon`` aside, or refuse.

        The admission check and the reservation append share one lock
        acquisition: concurrent reservations against one account are
        serialized, so the sum of admitted epsilons can never exceed
        the declared budget.
        """
        account = self.account(tenant)
        epsilon = _validate_epsilon(epsilon, f"job {job!r}")
        with account.lock:
            if job in account.pending or job in account.committed:
                raise AccountError(
                    f"job {job!r} already holds a reservation for "
                    f"tenant {tenant!r}"
                )
            if epsilon > account.remaining + _TOLERANCE:
                raise BudgetExceededError(
                    tenant=tenant,
                    requested=epsilon,
                    remaining=max(account.remaining, 0.0),
                    budget=account.budget,
                )
            account._append(
                {"kind": "reserve", "job": job, "epsilon": epsilon}
            )
            account.pending[job] = epsilon

    def commit(
        self, tenant: str, job: str, ledger: CompositionLedger | None
    ) -> float:
        """Settle a successful job; returns the epsilon charged.

        With a ledger, the charge is its composed ``epsilon_total``
        (validated against the reservation — never more); without one
        (a method that publishes no composition ledger, or crash
        recovery) the full reservation is charged conservatively.
        """
        account = self.account(tenant)
        with account.lock:
            if job not in account.pending:
                raise AccountError(
                    f"commit for job {job!r} of tenant {tenant!r} without "
                    f"a live reservation"
                )
            reserved = account.pending[job]
            if ledger is None:
                charged = reserved
                payload = None
            else:
                charged = ledger.epsilon_total
                payload = ledger.to_dict()
                if charged > reserved + _TOLERANCE:
                    raise AccountError(
                        f"job {job!r} composed eps={charged:g}, more than "
                        f"its reservation {reserved:g} — refusing to "
                        f"commit an overspend"
                    )
                if charged <= 0.0:
                    # A ledger with no draws (nothing was spent): settle
                    # as a release, not a zero-epsilon commit.
                    account._append(
                        {"kind": "release", "job": job, "reason": "no draws"}
                    )
                    del account.pending[job]
                    account.released[job] = "no draws"
                    return 0.0
            account._append(
                {"kind": "commit", "job": job, "epsilon": charged,
                 "ledger": payload}
            )
            del account.pending[job]
            account.committed[job] = charged
            return charged

    def release(self, tenant: str, job: str, reason: str = "") -> None:
        """Return a failed job's reservation to the tenant."""
        account = self.account(tenant)
        with account.lock:
            if job not in account.pending:
                raise AccountError(
                    f"release for job {job!r} of tenant {tenant!r} without "
                    f"a live reservation"
                )
            account._append(
                {"kind": "release", "job": job, "reason": reason}
            )
            del account.pending[job]
            account.released[job] = reason

    # -- crash recovery -----------------------------------------------------

    def recover(self) -> dict[str, list[str]]:
        """Settle reservations orphaned by a crash, conservatively.

        A reservation with neither commit nor release means the
        previous process died mid-job — *after* admission, possibly
        after drawing noise. The epsilon may already have leaked, so
        each orphan is committed in full (``ledger: null``) rather
        than refunded. Returns ``{tenant: [job, ...]}`` of what was
        recovered, so the daemon can log it.
        """
        recovered: dict[str, list[str]] = {}
        for tenant in self.tenants():
            account = self.account(tenant)
            with account.lock:
                for job in sorted(account.pending):
                    reserved = account.pending[job]
                    account._append(
                        {"kind": "commit", "job": job, "epsilon": reserved,
                         "ledger": None}
                    )
                    del account.pending[job]
                    account.committed[job] = reserved
                    recovered.setdefault(tenant, []).append(job)
        return recovered
