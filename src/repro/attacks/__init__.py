"""Attack models used in the paper's evaluation.

* :mod:`repro.attacks.linkage` — the re-identification (linking) attack
  of [3], with spatial / temporal / spatiotemporal / sequential
  signature variants (the LA columns of Table II);
* :mod:`repro.attacks.hmm` — Newson-Krumm HMM map matching [34];
* :mod:`repro.attacks.recovery` — the recovery attack: reconstructing
  original road paths from anonymized trajectories via map matching.
"""

from repro.attacks.linkage import LinkageAttack, LinkageResult
from repro.attacks.hmm import HmmMapMatcher
from repro.attacks.recovery import RecoveryAttack

__all__ = [
    "HmmMapMatcher",
    "LinkageAttack",
    "LinkageResult",
    "RecoveryAttack",
]
