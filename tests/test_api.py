"""Tests for repro.api: MethodSpec, the method registry, and run().

The load-bearing guarantees:

* specs are frozen, picklable, and digest-stable across processes
  (the engine ships them across pool boundaries);
* every Table II label resolves through the registry and
  ``FrequencyAnonymizer(**spec.params)`` round-trips the pipeline's
  canonical spec, and an explicit ``epsilon_*=0.0`` is rejected
  (``None`` is the one way to disable a stage);
* ``run(spec, data)`` is byte-identical to the legacy direct path for
  the same seed, on both engines;
* results travel with the return value — concurrent runs on one
  engine can never clobber each other's reports.
"""

import pickle
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    FAMILIES,
    MethodSpec,
    RunResult,
    as_spec,
    build,
    method_info,
    method_names,
    register,
    run,
)
from repro.api import registry as registry_module
from repro.core.pipeline import GL, FrequencyAnonymizer, PureL
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.engine import BatchAnonymizer
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import (
    SYNTHETIC_METHODS,
    TABLE2_ORDER,
    build_methods,
    our_model_specs,
    table2_specs,
)


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(
        FleetConfig(n_objects=12, points_per_trajectory=60, rows=10, cols=10, seed=3)
    )


def coords_of(dataset):
    return [[p.coord for p in trajectory] for trajectory in dataset]


class TestMethodSpec:
    def test_normalizes_kind_and_params(self):
        spec = MethodSpec(" GL ", {"epsilon": 1.0})
        assert spec.kind == "gl"
        assert spec.params == {"epsilon": 1.0}

    def test_frozen(self):
        spec = MethodSpec("gl")
        with pytest.raises(AttributeError):
            spec.kind = "purel"

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            MethodSpec("")
        with pytest.raises(ValueError):
            MethodSpec("no spaces allowed")

    def test_rejects_non_plain_params(self):
        with pytest.raises(TypeError):
            MethodSpec("gl", {"epsilon": object()})
        with pytest.raises(ValueError):
            MethodSpec("gl", {"not an identifier": 1})
        with pytest.raises(TypeError):
            MethodSpec("gl", [("epsilon", 1.0)])

    def test_sequences_normalize_to_tuples(self):
        spec = MethodSpec("gl", {"values": [1, 2, [3, 4]]})
        assert spec.params["values"] == (1, 2, (3, 4))

    def test_dict_round_trip(self):
        spec = MethodSpec("rsc", {"radius": 500.0, "signature_size": 5})
        rebuilt = MethodSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.digest == spec.digest

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            MethodSpec.from_dict({"kind": "gl", "extra": 1})
        with pytest.raises(ValueError):
            MethodSpec.from_dict({"params": {}})

    def test_pickle_round_trip(self):
        spec = MethodSpec("gl", {"epsilon": 2.0, "seed": 7})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.digest == spec.digest

    def test_hashable(self):
        a = MethodSpec("gl", {"epsilon": 1.0})
        b = MethodSpec("gl", {"epsilon": 1.0})
        assert len({a, b}) == 1

    def test_digest_ignores_param_order(self):
        a = MethodSpec("gl", {"epsilon": 1.0, "seed": 7})
        b = MethodSpec("gl", {"seed": 7, "epsilon": 1.0})
        assert a == b
        assert a.digest == b.digest

    def test_digest_distinguishes_configs(self):
        assert (
            MethodSpec("gl", {"epsilon": 1.0}).digest
            != MethodSpec("gl", {"epsilon": 2.0}).digest
        )

    def test_digest_stable_across_processes(self):
        spec = MethodSpec("gl", {"epsilon": 1.0, "seed": 7})
        script = (
            "from repro.api import MethodSpec; "
            "print(MethodSpec('gl', {'epsilon': 1.0, 'seed': 7}).digest)"
        )
        import os
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        env = {**os.environ, "PYTHONPATH": str(repo_root / "src")}
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
            cwd=str(repo_root),
        )
        assert out.stdout.strip() == spec.digest

    def test_replace_merges(self):
        spec = MethodSpec("gl", {"epsilon": 1.0, "seed": 7})
        swept = spec.replace(epsilon=5.0)
        assert swept.params == {"epsilon": 5.0, "seed": 7}
        assert spec.params["epsilon"] == 1.0  # original untouched

    def test_as_spec_coercions(self):
        assert as_spec("gl") == MethodSpec("gl")
        assert as_spec({"kind": "gl"}) == MethodSpec("gl")
        spec = MethodSpec("gl", {"epsilon": 3.0})
        assert as_spec(spec) is spec
        with pytest.raises(TypeError):
            as_spec(42)


class TestRegistry:
    def test_builtin_kinds_present(self):
        names = method_names()
        for kind in (
            "frequency", "gl", "pureg", "purel",
            "sc", "rsc", "w4m", "glove", "klt", "dpt", "adatrace",
        ):
            assert kind in names

    def test_unknown_kind_lists_alternatives(self):
        with pytest.raises(ValueError, match="registered methods"):
            method_info("nope")
        with pytest.raises(ValueError, match="registered methods"):
            build(MethodSpec("nope"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register("gl", summary="dup", family="frequency")(lambda: None)

    def test_register_validates_family_and_kind(self):
        with pytest.raises(ValueError):
            register("x", summary="s", family="bogus")(lambda: None)
        with pytest.raises(ValueError):
            register("bad kind", summary="s", family="plugin")(lambda: None)

    def test_replace_flag_allows_override(self):
        sentinel = object()
        original = method_info("gl")

        @register("gl", summary="shadow", family="frequency", replace=True)
        def shadow():
            return sentinel

        try:
            assert build(MethodSpec("gl")) is sentinel
        finally:
            # restore the real entry for the rest of the suite
            registry_module._REGISTRY["gl"] = original
        assert method_info("gl").summary == original.summary

    def test_build_rejects_unknown_params(self):
        with pytest.raises(ValueError, match="accepted"):
            build(MethodSpec("adatrace", {"bogus_knob": 1}))

    def test_families_declared(self):
        for kind in method_names():
            assert method_info(kind).family in FAMILIES

    def test_default_params_match_constructors(self):
        """Factory signatures are the public contract — they must not
        drift from the constructors they wrap."""
        import inspect

        from repro.baselines.adatrace import AdaTrace
        from repro.baselines.dpt import DPT
        from repro.baselines.glove import Glove
        from repro.baselines.klt import KLT
        from repro.baselines.signature_closure import (
            RadiusSignatureClosure,
            SignatureClosure,
        )
        from repro.baselines.w4m import W4M

        pairs = {
            "frequency": FrequencyAnonymizer,
            "sc": SignatureClosure,
            "rsc": RadiusSignatureClosure,
            "w4m": W4M,
            "glove": Glove,
            "klt": KLT,
            "dpt": DPT,
            "adatrace": AdaTrace,
        }
        for kind, cls in pairs.items():
            declared = method_info(kind).default_params()
            actual = {
                name: parameter.default
                for name, parameter in inspect.signature(cls).parameters.items()
                if parameter.default is not inspect.Parameter.empty
            }
            assert declared == actual, f"{kind} drifted from {cls.__name__}"

    def test_entry_point_discovery_tolerates_absence(self, monkeypatch):
        monkeypatch.setattr(registry_module, "_PLUGINS_LOADED", False)
        assert "gl" in method_names()  # discovery ran without error
        assert registry_module._PLUGINS_LOADED


class TestSpecRoundTrip:
    """config()/spec round-trip for every registered frequency method."""

    @pytest.mark.parametrize("kind", ["frequency", "gl", "pureg", "purel"])
    def test_rebuilds_equivalent_instance(self, kind):
        instance = build(MethodSpec(kind, {"seed": 11}))
        spec = instance.spec()
        assert spec.kind == "frequency"
        rebuilt = FrequencyAnonymizer(**spec.params)
        assert rebuilt.config() == instance.config()
        assert rebuilt.spec().digest == spec.digest

    def test_epsilon_zero_is_rejected_not_normalized(self):
        """An explicit ε=0 raises; None is the one way to disable a
        stage, so every spec digest unambiguously states what ran."""
        none_form = FrequencyAnonymizer(epsilon_global=0.7, epsilon_local=None)
        assert none_form.spec().params["epsilon_local"] is None
        with pytest.raises(ValueError, match="explicit zero budget"):
            FrequencyAnonymizer(epsilon_global=0.7, epsilon_local=0.0)

    def test_spec_is_engine_payload(self, fleet):
        """The spec crosses process boundaries in place of config()."""
        anonymizer = GL(epsilon=1.0, signature_size=3, seed=9)
        payload = pickle.loads(pickle.dumps(anonymizer.spec()))
        rebuilt = build(payload)
        a = anonymizer.anonymize(fleet.dataset)
        b = rebuilt.anonymize(fleet.dataset)
        assert coords_of(a) == coords_of(b)


class TestTable2Completeness:
    def test_every_label_resolves(self):
        config = ExperimentConfig.smoke()
        for label, spec in table2_specs(config).items():
            instance = build(spec)
            assert hasattr(instance, "anonymize"), label

    def test_column_order_matches_paper(self):
        config = ExperimentConfig.smoke()
        labels = list(table2_specs(config))
        collapsed = []
        for label in labels:
            name = "RSC" if label.startswith("RSC-") else label
            if not collapsed or collapsed[-1] != name:
                collapsed.append(name)
        assert collapsed == [label for label, _ in TABLE2_ORDER]

    def test_build_methods_is_thin_view(self):
        config = ExperimentConfig.smoke()
        assert list(build_methods(config)) == list(table2_specs(config))

    def test_synthetic_flags_come_from_registry(self):
        assert SYNTHETIC_METHODS == frozenset({"DPT", "AdaTrace"})
        for label, kind in TABLE2_ORDER:
            assert method_info(kind).synthetic == (label in SYNTHETIC_METHODS)

    def test_our_models_epsilon_not_halved(self):
        config = ExperimentConfig.smoke()
        specs = our_model_specs(config)
        assert set(specs) == {"PureG", "PureL", "GL"}
        for spec in specs.values():
            assert spec.params["epsilon"] == config.epsilon


class TestRun:
    def test_byte_identical_to_legacy_serial(self, fleet):
        legacy = GL(epsilon=1.0, signature_size=3, seed=21).anonymize(fleet.dataset)
        spec = MethodSpec("gl", {"epsilon": 1.0, "signature_size": 3, "seed": 21})
        result = run(spec, fleet.dataset)
        assert coords_of(result.dataset) == coords_of(legacy)
        for a, b in zip(legacy, result.dataset, strict=True):
            assert [p.t for p in a] == [p.t for p in b]

    def test_byte_identical_to_legacy_batch(self, fleet):
        legacy = GL(epsilon=1.0, signature_size=3, seed=21).anonymize(fleet.dataset)
        spec = MethodSpec("gl", {"epsilon": 1.0, "signature_size": 3, "seed": 21})
        result = run(
            spec, fleet.dataset, engine="batch", workers=3, executor="thread"
        )
        assert result.engine == "batch"
        assert coords_of(result.dataset) == coords_of(legacy)

    def test_result_bundles_everything(self, fleet):
        spec = MethodSpec("purel", {"epsilon": 0.5, "signature_size": 3, "seed": 5})
        result = run(spec, fleet.dataset)
        assert isinstance(result, RunResult)
        assert result.spec == spec
        assert result.seconds >= 0
        assert result.report is not None
        assert result.report.spec.kind == "frequency"
        assert result.utility_loss == result.report.utility_loss
        summary = result.to_dict()
        assert summary["digest"] == spec.digest
        assert summary["trajectories"] == len(fleet.dataset)
        assert summary["report"]["method"]["kind"] == "frequency"

    def test_baseline_runs_without_report(self, fleet):
        result = run(MethodSpec("sc", {"signature_size": 3}), fleet.dataset)
        assert result.report is None
        assert result.utility_loss is None
        assert result.to_dict()["report"] is None
        assert len(result.dataset) == len(fleet.dataset)

    def test_bare_kind_accepted(self, fleet):
        result = run("sc", fleet.dataset)
        assert len(result.dataset) == len(fleet.dataset)

    def test_batch_engine_rejected_for_baselines(self, fleet):
        with pytest.raises(ValueError, match="frequency-family"):
            run(MethodSpec("sc"), fleet.dataset, engine="batch")

    def test_unknown_engine_rejected(self, fleet):
        with pytest.raises(ValueError, match="unknown engine"):
            run(MethodSpec("gl"), fleet.dataset, engine="gpu")

    def test_report_records_spec_provenance(self, fleet):
        spec = MethodSpec("gl", {"epsilon": 1.0, "signature_size": 3, "seed": 2})
        result = run(spec, fleet.dataset)
        method = result.report.to_dict()["method"]
        assert method["digest"] == result.report.spec.digest
        assert method["params"]["seed"] == 2


class TestConcurrencySafety:
    """The last_report race: results must travel with the return value."""

    def test_concurrent_runs_keep_their_own_reports(self, fleet):
        anonymizer = PureL(epsilon=0.5, signature_size=3, seed=31)
        engine = BatchAnonymizer(anonymizer, workers=2, executor="serial")
        datasets = [fleet.dataset.subset(4 + i) for i in range(6)]

        def job(dataset):
            result, report = engine.anonymize_with_report(dataset)
            return dataset, result, report

        with ThreadPoolExecutor(max_workers=6) as pool:
            outcomes = list(pool.map(job, datasets))

        for dataset, result, report in outcomes:
            expected_ids = {t.object_id for t in dataset}
            assert {t.object_id for t in result} == expected_ids
            # The report must describe *this* call's dataset, not
            # whichever call finished last.
            assert set(report.pf_perturbations) == expected_ids

    def test_concurrent_calls_draw_distinct_streams(self, fleet):
        """The call counter is reserved atomically: parallel calls on
        one instance must never share a noise stream."""
        anonymizer = PureL(epsilon=0.5, signature_size=3, seed=33)

        def job(_):
            result, _report = anonymizer.anonymize_with_report(fleet.dataset)
            return coords_of(result)

        with ThreadPoolExecutor(max_workers=4) as pool:
            outputs = list(pool.map(job, range(4)))
        for i in range(len(outputs)):
            for j in range(i + 1, len(outputs)):
                assert outputs[i] != outputs[j]

    def test_pinned_call_index_replays_stream(self, fleet):
        reference = PureL(epsilon=0.5, signature_size=3, seed=35)
        first = reference.anonymize(fleet.dataset)
        second = reference.anonymize(fleet.dataset)

        replay = PureL(epsilon=0.5, signature_size=3, seed=35)
        replay_second, _ = replay.anonymize_with_report(
            fleet.dataset, call_index=1
        )
        assert coords_of(replay_second) == coords_of(second)
        assert coords_of(replay_second) != coords_of(first)

    def test_last_report_alias_deprecated_on_engine(self, fleet):
        engine = BatchAnonymizer(
            PureL(epsilon=0.5, signature_size=3, seed=37), workers=1
        )
        engine.anonymize(fleet.dataset)
        with pytest.warns(DeprecationWarning):
            assert engine.last_report is not None
