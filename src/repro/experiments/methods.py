"""Registry of every method Table II compares.

``build_methods`` returns an ordered mapping from the paper's method
label to a freshly configured anonymizer. ``SYNTHETIC_METHODS`` marks
the generative models whose outputs carry no record-level truthfulness
(the paper skips temporal-linkage and recovery metrics for them).
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.adatrace import AdaTrace
from repro.baselines.dpt import DPT
from repro.baselines.glove import Glove
from repro.baselines.klt import KLT
from repro.baselines.signature_closure import (
    RadiusSignatureClosure,
    SignatureClosure,
)
from repro.baselines.w4m import W4M
from repro.core.pipeline import GL, PureG, PureL
from repro.experiments.config import ExperimentConfig
from repro.trajectory.model import TrajectoryDataset

Anonymizer = Callable[[TrajectoryDataset], TrajectoryDataset]

#: Methods whose output is synthetic (no record-level pairing).
SYNTHETIC_METHODS = frozenset({"DPT", "AdaTrace"})


def build_methods(config: ExperimentConfig) -> dict[str, Anonymizer]:
    """All Table II methods in the paper's column order."""
    m = config.signature_size
    methods: dict[str, Anonymizer] = {}

    methods["SC"] = lambda ds: SignatureClosure(signature_size=m).anonymize(ds)
    for radius in config.rsc_radii:
        label = f"RSC-{radius / 1000:g}"
        methods[label] = (
            lambda ds, r=radius: RadiusSignatureClosure(
                signature_size=m, radius=r
            ).anonymize(ds)
        )

    methods["W4M"] = lambda ds: W4M(k=config.k_anonymity).anonymize(ds)
    methods["GLOVE"] = lambda ds: Glove(k=config.k_anonymity).anonymize(ds)
    methods["KLT"] = lambda ds: KLT(
        k=config.k_anonymity,
        l_diversity=config.l_diversity,
        t_closeness=config.t_closeness,
    ).anonymize(ds)

    methods["DPT"] = lambda ds: DPT(
        epsilon=config.epsilon, seed=config.seed
    ).anonymize(ds)
    methods["AdaTrace"] = lambda ds: AdaTrace(
        epsilon=config.epsilon, seed=config.seed
    ).anonymize(ds)

    methods["PureG"] = lambda ds: PureG(
        epsilon=config.epsilon / 2.0, signature_size=m, seed=config.seed
    ).anonymize(ds)
    methods["PureL"] = lambda ds: PureL(
        epsilon=config.epsilon / 2.0, signature_size=m, seed=config.seed
    ).anonymize(ds)
    methods["GL"] = lambda ds: GL(
        epsilon=config.epsilon, signature_size=m, seed=config.seed
    ).anonymize(ds)
    return methods


def build_our_models(config: ExperimentConfig) -> dict[str, Anonymizer]:
    """Just the frequency-based models (for the ε sweep of Figure 4)."""
    m = config.signature_size
    return {
        "PureG": lambda ds: PureG(
            epsilon=config.epsilon, signature_size=m, seed=config.seed
        ).anonymize(ds),
        "PureL": lambda ds: PureL(
            epsilon=config.epsilon, signature_size=m, seed=config.seed
        ).anonymize(ds),
        "GL": lambda ds: GL(
            epsilon=config.epsilon, signature_size=m, seed=config.seed
        ).anonymize(ds),
    }
