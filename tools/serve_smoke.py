#!/usr/bin/env python
"""CI smoke test for the `repro serve` daemon, end to end over the wire.

The whole serving story in one script, against a real subprocess:

1. generate a small fleet and ingest it into a registry root (the
   daemon resolves the job's dataset by registry name, exercising the
   concurrent-resolve path the registry hardened for serving);
2. boot `repro serve` on an ephemeral port with two tenants — one
   funded, one underfunded;
3. submit a job, poll it to completion, stream the result CSV, and
   verify it byte-matches an in-process `repro.api.run(engine="batch")`
   of the same dataset/spec/seed;
4. exercise the refusal contract: the underfunded tenant's submission
   must come back as a structured 429 `budget-exhausted` body;
5. `POST /v1/shutdown` and require a clean exit (drained, engines
   closed, exit code 0).

Run from the repo root: ``PYTHONPATH=src python tools/serve_smoke.py``.
Exits non-zero with a diagnostic on the first broken step.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SPEC = {"kind": "gl", "params": {"epsilon": 1.0, "seed": 42}}


def fail(message: str) -> None:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def request(base: str, path: str, payload: dict | None = None):
    """``(status, body_bytes)`` for a GET (payload None) or JSON POST."""
    req = urllib.request.Request(
        base + path,
        data=None if payload is None else json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="GET" if payload is None else "POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    env = {"PYTHONPATH": "src"}

    def run_cli(*args: str) -> None:
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            cwd=REPO,
            env={**env, "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            fail(f"`repro {args[0]}` exited {result.returncode}: "
                 f"{result.stderr.strip()}")

    # 1. A raw fleet, ingested into a registry root by name.
    fleet_csv = tmp / "fleet.csv"
    registry = tmp / "registry"
    run_cli(
        "generate", "--objects", "10", "--points", "40", "--seed", "3",
        "-o", str(fleet_csv),
    )
    run_cli(
        "ingest", "-i", str(fleet_csv), "--name", "smoke-fleet",
        "--root", str(registry),
    )

    # 2. Boot the daemon: one funded tenant, one underfunded.
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--budget-root", str(tmp / "budgets"),
            "--spool", str(tmp / "spool"),
            "--registry", str(registry),
            "--tenant", "acme=4.0",
            "--tenant", "tiny=0.1",
            "--workers", "1",
            "--executor", "thread",
        ],
        cwd=REPO,
        env={**env, "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = daemon.stdout.readline().strip()
        if not line.startswith("serving on "):
            daemon.kill()
            fail(f"expected a serving line, got {line!r}: "
                 f"{daemon.stderr.read()[-500:]}")
        base = line.removeprefix("serving on ")
        print(f"serve-smoke: daemon up at {base}")

        # 3. Submit by registry name, poll, stream, byte-compare.
        status, body = request(
            base, "/v1/jobs",
            {"tenant": "acme", "dataset": "smoke-fleet", "spec": SPEC},
        )
        if status != 202:
            fail(f"submit returned {status}: {body!r}")
        job = json.loads(body)
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status, body = request(base, f"/v1/jobs/{job['id']}")
            state = json.loads(body)
            if state["state"] in ("done", "failed"):
                break
            time.sleep(0.2)
        if state["state"] != "done":
            fail(f"job ended {state['state']}: {state.get('error')}")
        status, served = request(base, f"/v1/jobs/{job['id']}/result")
        if status != 200:
            fail(f"result returned {status}: {served!r}")
        print(f"serve-smoke: streamed {len(served)} byte(s), "
              f"eps_charged={state['eps_charged']}")

        sys.path.insert(0, str(REPO / "src"))
        from repro.api import run as api_run
        from repro.data.registry import DatasetRegistry
        from repro.trajectory.io import write_csv

        reference = api_run(
            SPEC,
            DatasetRegistry(registry).load("smoke-fleet"),
            engine="batch",
            workers=1,
            executor="thread",
        )
        expected_csv = tmp / "expected.csv"
        write_csv(reference.dataset, expected_csv)
        if served != expected_csv.read_bytes():
            fail("served CSV differs from the batch-engine reference run")
        print("serve-smoke: byte-identical to the batch engine")

        # 4. The refusal contract.
        status, body = request(
            base, "/v1/jobs",
            {"tenant": "tiny", "dataset": "smoke-fleet", "spec": SPEC},
        )
        refusal = json.loads(body)
        if status != 429 or refusal.get("error") != "budget-exhausted":
            fail(f"underfunded tenant got {status}: {refusal!r}")
        for key in ("tenant", "requested", "remaining", "budget"):
            if key not in refusal:
                fail(f"refusal body misses {key!r}: {refusal!r}")
        print("serve-smoke: structured 429 refusal verified")

        # 5. Clean shutdown over HTTP.
        status, body = request(base, "/v1/shutdown", {})
        if status != 202:
            fail(f"shutdown returned {status}: {body!r}")
        code = daemon.wait(timeout=60)
        if code != 0:
            fail(f"daemon exited {code}: {daemon.stderr.read()[-500:]}")
        print("serve-smoke: clean shutdown, exit 0")
    finally:
        if daemon.poll() is None:
            daemon.kill()
    print("serve-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
