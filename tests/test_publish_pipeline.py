"""Tests for the pipelined publisher: spill staging, process-parallel
pass 2, and the overlap of the two passes.

The load-bearing guarantees on top of ``test_publish.py``:

* the spill codec round-trips parsed chunks **exactly** (float64, not
  the lossy ``%.3f`` CSV quantisation), and every read is validated —
  a truncated or mutated spill aborts pass 2 with a positional error
  instead of publishing a short or stale release;
* spill directories are cleaned up on success, on failure, and on
  ``close()``;
* parallel publish output — CSV bytes and ledger totals — is
  byte-identical to the serial publisher across executors and chunk
  counts (fixture + hypothesis), including single-chunk ==
  ``anonymize``;
* without a global mechanism, pass-2 realisation genuinely overlaps
  pass-1 parsing behind the bounded window.
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import GL, PureL
from repro.data.stream import chunked
from repro.datagen.generator import FleetConfig, generate_fleet
from repro.engine import (
    SpillError,
    SpillStore,
    StreamPublisher,
    csv_chunk_bytes,
    parallel_map_stream,
)
from repro.engine.spill import decode_chunk, encode_chunk, read_spill, write_spill
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(
        FleetConfig(n_objects=10, points_per_trajectory=40, rows=8, cols=8, seed=5)
    )


def source(dataset, chunk_size):
    return lambda: chunked(iter(dataset), chunk_size)


def publish_bytes(publisher, chunks):
    out = bytearray()
    report = publisher.publish(chunks, byte_sink=lambda b, _r: out.extend(b))
    return bytes(out), report


# -- spill codec ---------------------------------------------------------------


class TestSpillCodec:
    def test_roundtrip_is_exact(self):
        """float64 round-trip, including values ``%.3f`` would destroy."""
        dataset = TrajectoryDataset(
            [
                Trajectory("a", [Point(0.1 + 0.2, -1e-9, 1234.5678901)]),
                Trajectory("übér-ID", [Point(1e12, -3.25, 0.0), Point(2, 3, 4)]),
                Trajectory("empty", []),
            ]
        )
        rebuilt = decode_chunk(encode_chunk(dataset))
        assert [t.object_id for t in rebuilt] == ["a", "übér-ID", "empty"]
        for before, after in zip(dataset, rebuilt, strict=True):
            assert [(p.x, p.y, p.t) for p in before] == [
                (p.x, p.y, p.t) for p in after
            ]

    def test_file_roundtrip(self, fleet, tmp_path):
        path = tmp_path / "chunk-000000.spill"
        write_spill(path, 0, fleet.dataset)
        rebuilt = read_spill(path, index=0, expected_trajectories=len(fleet.dataset))
        assert [t.object_id for t in rebuilt] == [
            t.object_id for t in fleet.dataset
        ]

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "x.spill"
        path.write_bytes(b"object_id,t,x,y\n")
        with pytest.raises(SpillError, match=r":1: not a spill file"):
            read_spill(path)

    def test_rejects_wrong_chunk_index(self, fleet, tmp_path):
        path = tmp_path / "x.spill"
        write_spill(path, 3, fleet.dataset)
        with pytest.raises(SpillError, match="holds chunk 3, expected chunk 1"):
            read_spill(path, index=1)

    def test_truncation_is_line_numbered(self, fleet, tmp_path):
        path = tmp_path / "x.spill"
        write_spill(path, 0, fleet.dataset)
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])
        with pytest.raises(SpillError, match=r":2: payload truncated"):
            read_spill(path, index=0)

    def test_mutation_fails_checksum(self, fleet, tmp_path):
        path = tmp_path / "x.spill"
        write_spill(path, 0, fleet.dataset)
        whole = bytearray(path.read_bytes())
        whole[-10] ^= 0xFF
        path.write_bytes(bytes(whole))
        with pytest.raises(SpillError, match=r":2: payload checksum mismatch"):
            read_spill(path, index=0)

    def test_frame_overrun_names_byte_offset(self):
        # A frame header promising more points than the payload holds.
        payload = encode_chunk(
            TrajectoryDataset([Trajectory("a", [Point(1, 2, 3)])])
        )
        with pytest.raises(SpillError, match="byte 8: trajectory frame runs"):
            decode_chunk(payload[:-8])


class TestSpillStore:
    def test_stage_load_remove(self, fleet, tmp_path):
        with SpillStore(tmp_path / "spill") as store:
            store.stage(0, fleet.dataset)
            assert store.path_of(0).exists()
            loaded = store.load(0)
            assert len(loaded) == len(fleet.dataset)
            store.remove(0)
            assert not store.path_of(0).exists()

    def test_duplicate_stage_refused(self, fleet):
        with SpillStore() as store:
            store.stage(0, fleet.dataset)
            with pytest.raises(ValueError, match="already staged"):
                store.stage(0, fleet.dataset)

    def test_unstaged_load_refused(self):
        with SpillStore() as store:
            with pytest.raises(SpillError, match="never staged"):
                store.load(7)

    def test_cache_hit_still_detects_mutation(self, fleet, tmp_path):
        """A decoded in-memory copy must not mask on-disk tampering."""
        with SpillStore(tmp_path / "spill", cache=4) as store:
            store.stage(0, fleet.dataset)
            path = store.path_of(0)
            whole = bytearray(path.read_bytes())
            whole[-1] ^= 0xFF
            path.write_bytes(bytes(whole))
            with pytest.raises(SpillError, match="checksum mismatch"):
                store.load(0)

    def test_owned_tempdir_removed_on_close(self, fleet):
        store = SpillStore()
        store.stage(0, fleet.dataset)
        root = store.path
        assert root.exists()
        store.close()
        assert not root.exists()
        store.close()  # idempotent

    def test_explicit_dir_keeps_foreign_files(self, fleet, tmp_path):
        keep = tmp_path / "keep.txt"
        keep.write_text("mine")
        with SpillStore(tmp_path) as store:
            store.stage(0, fleet.dataset)
        assert keep.exists()
        assert not (tmp_path / "chunk-000000.spill").exists()

    def test_closed_store_refuses_staging(self, fleet):
        store = SpillStore()
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.stage(0, fleet.dataset)


# -- spill lifecycle through the publisher -------------------------------------


class TestPublisherSpillHygiene:
    def test_success_cleans_spill_dir(self, fleet, tmp_path):
        spill = tmp_path / "spill"
        publisher = StreamPublisher(
            GL(epsilon=1.0, signature_size=3, seed=9), spill_dir=spill
        )
        publisher.publish(source(fleet.dataset, 4))
        assert list(spill.glob("*.spill")) == []

    def test_failure_cleans_spill_dir(self, fleet, tmp_path):
        spill = tmp_path / "spill"
        publisher = StreamPublisher(
            GL(epsilon=1.0, signature_size=3, seed=9), spill_dir=spill
        )

        def exploding(_chunk, _report):
            raise RuntimeError("sink boom")

        with pytest.raises(RuntimeError, match="sink boom"):
            publisher.publish(source(fleet.dataset, 4), sink=exploding)
        assert list(spill.glob("*.spill")) == []

    def test_context_manager_close_is_terminal(self, fleet):
        with StreamPublisher(GL(epsilon=1.0, signature_size=3, seed=9)) as pub:
            pub.publish(source(fleet.dataset, 4))
        with pytest.raises(RuntimeError, match="closed"):
            pub.publish(source(fleet.dataset, 4))
        with pytest.raises(RuntimeError, match="closed"):
            pub.__enter__()

    def test_mutated_spill_aborts_publish(self, fleet, tmp_path):
        """The single-consumption drift check: pass 2 trusts only
        validated spills, so corruption between staging and realisation
        aborts with a positional error instead of a short release."""
        spill = tmp_path / "spill"
        publisher = StreamPublisher(
            GL(epsilon=1.0, signature_size=3, seed=9), spill_dir=spill
        )

        def corrupting():
            for i, chunk in enumerate(chunked(iter(fleet.dataset), 4)):
                yield chunk
                if i == 1:
                    path = spill / "chunk-000000.spill"
                    whole = bytearray(path.read_bytes())
                    whole[-3] ^= 0xFF
                    path.write_bytes(bytes(whole))

        with pytest.raises(SpillError, match=r"\.spill:2: payload checksum"):
            publisher.publish(lambda: corrupting())
        assert list(spill.glob("*.spill")) == []

    def test_truncated_spill_aborts_publish(self, fleet, tmp_path):
        spill = tmp_path / "spill"
        publisher = StreamPublisher(
            GL(epsilon=1.0, signature_size=3, seed=9), spill_dir=spill
        )

        def truncating():
            for i, chunk in enumerate(chunked(iter(fleet.dataset), 4)):
                yield chunk
                if i == 1:
                    path = spill / "chunk-000000.spill"
                    path.write_bytes(path.read_bytes()[:40])

        with pytest.raises(SpillError, match="truncated"):
            publisher.publish(lambda: truncating())


# -- byte-identity across executors --------------------------------------------


MAKERS = {
    "gl": lambda: GL(epsilon=1.0, signature_size=3, seed=21),
    "pure-local": lambda: PureL(epsilon=0.5, signature_size=3, seed=21),
}


class TestParallelByteIdentity:
    @pytest.mark.parametrize("maker", MAKERS.values(), ids=MAKERS.keys())
    @pytest.mark.parametrize("chunk_size", [2, 3, 4, 5, 100])
    def test_thread_pool_matches_serial(self, fleet, maker, chunk_size):
        base, base_report = publish_bytes(
            StreamPublisher(maker()), source(fleet.dataset, chunk_size)
        )
        got, report = publish_bytes(
            StreamPublisher(maker(), workers=3, executor="thread"),
            source(fleet.dataset, chunk_size),
        )
        assert got == base
        assert report.epsilon_total == base_report.epsilon_total
        assert report.chunks == base_report.chunks
        assert (
            report.accounting.to_dict() == base_report.accounting.to_dict()
        )

    @pytest.mark.parametrize("chunk_size", [4, 100])
    def test_process_pool_matches_serial(self, fleet, chunk_size):
        base, base_report = publish_bytes(
            StreamPublisher(MAKERS["gl"]()), source(fleet.dataset, chunk_size)
        )
        got, report = publish_bytes(
            StreamPublisher(MAKERS["gl"](), workers=2, executor="process"),
            source(fleet.dataset, chunk_size),
        )
        assert got == base
        assert report.chunks == base_report.chunks

    def test_single_chunk_matches_plain_anonymize(self, fleet):
        serial = MAKERS["gl"]().anonymize(fleet.dataset)
        got, report = publish_bytes(
            StreamPublisher(MAKERS["gl"](), workers=2, executor="process"),
            source(fleet.dataset, 10_000),
        )
        assert report.chunk_count == 1
        assert got == csv_chunk_bytes(serial)

    def test_window_one_matches_serial(self, fleet):
        base, _ = publish_bytes(
            StreamPublisher(MAKERS["gl"]()), source(fleet.dataset, 3)
        )
        got, _ = publish_bytes(
            StreamPublisher(MAKERS["gl"](), workers=2, executor="thread", window=1),
            source(fleet.dataset, 3),
        )
        assert got == base

    @given(
        chunk_count=st.integers(1, 5),
        workers=st.integers(2, 4),
        epsilon=st.sampled_from([0.5, 1.0, 2.0]),
        seed=st.integers(0, 3),
    )
    @settings(max_examples=12, deadline=None)
    def test_hypothesis_identity_across_executors(
        self, fleet, chunk_count, workers, epsilon, seed
    ):
        chunk_size = -(-len(fleet.dataset) // chunk_count)  # ceil div
        make = lambda: GL(epsilon=epsilon, signature_size=3, seed=seed)
        base, base_report = publish_bytes(
            StreamPublisher(make()), source(fleet.dataset, chunk_size)
        )
        got, report = publish_bytes(
            StreamPublisher(make(), workers=workers, executor="thread"),
            source(fleet.dataset, chunk_size),
        )
        assert got == base
        assert report.epsilon_total == base_report.epsilon_total
        assert report.utility_loss == base_report.utility_loss
        assert report.chunk_count == base_report.chunk_count == chunk_count


class TestApportionmentModes:
    def test_both_modes_apportion_exactly(self, fleet):
        for mode in ("balanced", "proportional"):
            publisher = StreamPublisher(
                GL(epsilon=1.0, signature_size=3, seed=9), apportionment=mode
            )
            estimate = publisher.estimate(chunked(iter(fleet.dataset), 3))
            targets = publisher.chunk_targets(estimate)
            shared = estimate.perturbation
            for loc in shared.original:
                assert sum(t.perturbed.get(loc, 0) for t in targets) == (
                    shared.perturbed[loc]
                )
            for target, size in zip(
                targets, estimate.chunk_sizes, strict=True
            ):
                assert all(0 <= c <= size for c in target.perturbed.values())

    def test_balanced_touches_fewer_locations(self, fleet):
        """The perf lever: balanced concentrates each location's delta
        on few chunks, so chunks see fewer distinct perturbed
        locations than under proportional spreading."""

        def touched(mode):
            publisher = StreamPublisher(
                GL(epsilon=1.0, signature_size=3, seed=9), apportionment=mode
            )
            estimate = publisher.estimate(chunked(iter(fleet.dataset), 3))
            targets = publisher.chunk_targets(estimate)
            return sum(
                sum(1 for l in t.original if t.perturbed[l] != t.original[l])
                for t in targets
            )

        assert touched("balanced") <= touched("proportional")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="apportionment"):
            StreamPublisher(
                GL(epsilon=1.0, signature_size=3, seed=9),
                apportionment="random",
            )


# -- overlap -------------------------------------------------------------------


class TestPassOverlap:
    def test_local_only_realisation_overlaps_parsing(self, fleet):
        """Without a shared draw, chunk k publishes while pass 1 is
        still parsing later chunks — the source sees sink events
        interleaved with its own."""
        events = []
        publisher = StreamPublisher(PureL(epsilon=0.5, signature_size=3, seed=9))

        def observed():
            for i, chunk in enumerate(chunked(iter(fleet.dataset), 2)):
                events.append(("parsed", i))
                yield chunk

        publisher.publish(
            lambda: observed(),
            sink=lambda _c, _r: events.append(("published", None)),
        )
        first_publish = events.index(("published", None))
        assert first_publish < len(events) - 1, events

    def test_global_spec_gates_realisation_not_parsing(self, fleet):
        """With a global mechanism every parse precedes every publish:
        the one shared draw needs the whole stream."""
        events = []
        publisher = StreamPublisher(GL(epsilon=1.0, signature_size=3, seed=9))

        def observed():
            for i, chunk in enumerate(chunked(iter(fleet.dataset), 2)):
                events.append("parsed")
                yield chunk

        publisher.publish(
            lambda: observed(), sink=lambda _c, _r: events.append("published")
        )
        boundary = events.index("published")
        assert all(e == "parsed" for e in events[:boundary])
        assert all(e == "published" for e in events[boundary:])


# -- pool window ---------------------------------------------------------------


class TestPoolWindow:
    def test_window_bounds_in_flight(self):
        """With window=1 the pool never holds two unfinished items."""
        in_flight = []
        lock = threading.Lock()
        peak = [0]

        def tracked(x):
            with lock:
                in_flight.append(x)
                peak[0] = max(peak[0], len(in_flight))
            try:
                return x * 2
            finally:
                with lock:
                    in_flight.remove(x)

        got = list(
            parallel_map_stream(
                tracked, range(8), workers=4, executor="thread", window=1
            )
        )
        assert got == [x * 2 for x in range(8)]
        assert peak[0] <= 1

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            list(
                parallel_map_stream(
                    int, [1], workers=2, executor="thread", window=0
                )
            )

    def test_serial_path_ignores_window(self):
        got = list(parallel_map_stream(int, ["1", "2"], workers=1, window=1))
        assert got == [1, 2]
