"""Algorithm 1: the global TF randomization mechanism.

Perturbs the trajectory-frequency distribution of the candidate set P
with zero-mean Laplace noise of scale ``1/ε_G`` (the TF point-counting
query has sensitivity 1: adding or removing one trajectory changes any
TF value by at most 1), then rounds each noisy value into the legal
integer range ``[0, |D|]`` — pure post-processing that cannot weaken
the guarantee.

The output is a *target* TF distribution; realising it on the dataset
is the job of the inter-trajectory modifier (Section IV-B1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.laplace import LaplaceMechanism
from repro.trajectory.model import LocationKey


@dataclass(frozen=True, slots=True)
class TFPerturbation:
    """Original vs perturbed global TF over the candidate set P."""

    original: dict[LocationKey, int]
    perturbed: dict[LocationKey, int]
    epsilon: float

    def delta(self, loc: LocationKey) -> int:
        """Signed TF change required for ``loc``."""
        return self.perturbed[loc] - self.original[loc]

    def increases(self) -> list[tuple[LocationKey, int]]:
        """Locations whose TF must grow, with the (positive) amount."""
        return [
            (loc, self.perturbed[loc] - tf)
            for loc, tf in self.original.items()
            if self.perturbed[loc] > tf
        ]

    def decreases(self) -> list[tuple[LocationKey, int]]:
        """Locations whose TF must shrink, with the (positive) amount."""
        return [
            (loc, tf - self.perturbed[loc])
            for loc, tf in self.original.items()
            if self.perturbed[loc] < tf
        ]

    def schedule(
        self,
    ) -> list[tuple[str, list[tuple[LocationKey, int]]]]:
        """The serial-order edit schedule realising this perturbation.

        Two phases — every TF decrease (locations sorted), then every
        TF increase (sorted) — exactly the order the serial reference
        loop processes them in. The wave planner consumes this schedule
        and regroups each phase into conflict-free waves without ever
        reordering locations across a conflict, which is what keeps the
        wave-parallel output byte-identical to the serial loop.
        """
        return [
            ("decrease", sorted(self.decreases())),
            ("increase", sorted(self.increases())),
        ]


class GlobalTFMechanism:
    """ε_G-differentially-private TF perturbation (Algorithm 1, lines 1-6)."""

    #: Sensitivity of the TF point-counting query φ(D, p).
    SENSITIVITY = 1.0

    def __init__(self, epsilon: float) -> None:
        self.mechanism = LaplaceMechanism(epsilon, sensitivity=self.SENSITIVITY)

    @property
    def epsilon(self) -> float:
        return self.mechanism.epsilon

    def perturb(
        self,
        tf: dict[LocationKey, int],
        dataset_size: int,
        rng: random.Random,
    ) -> TFPerturbation:
        """Noisy TF for every location of P, clamped into ``[0, |D|]``."""
        if dataset_size < 1:
            raise ValueError("dataset size must be positive")
        perturbed: dict[LocationKey, int] = {}
        # Deterministic iteration order so a seeded rng reproduces runs.
        for loc in sorted(tf):
            perturbed[loc] = self.mechanism.perturb_count(
                tf[loc], rng, mu=0.0, lower=0, upper=dataset_size
            )
        return TFPerturbation(
            original=dict(tf), perturbed=perturbed, epsilon=self.epsilon
        )
