"""Empirical differential-privacy checks for the mechanisms.

These tests verify the *definition* (Definition 1) directly: for
adjacent inputs x, x' and any output z,
``P[M(x) = z] <= e^eps * P[M(x') = z]``. We estimate output
distributions over many runs and assert the ratio bound (with sampling
slack) for:

* the global TF mechanism on two datasets differing in one trajectory;
* the local PF mechanism on two trajectories differing in one point
  (the adjacency notion of Theorem 3);
* the non-zero-mean Laplace mechanism in isolation at several means —
  the load-bearing claim of Theorem 2.
"""

import math
import random
from collections import Counter

import pytest

from repro.core.global_mechanism import GlobalTFMechanism
from repro.core.laplace import LaplaceMechanism
from repro.core.local_mechanism import LocalPFMechanism
from repro.core.signature import SignatureExtractor
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset

RUNS = 40_000
#: Slack multiplier for sampling error on the e^eps bound.
SLACK = 1.2
#: Ignore output buckets whose probability is below this (noise).
MIN_MASS = 0.01


def traj(object_id, coords):
    return Trajectory(
        object_id,
        [Point(float(x), float(y), 60.0 * i) for i, (x, y) in enumerate(coords)],
    )


def assert_ratio_bound(hist_x: Counter, hist_y: Counter, epsilon: float, n: int):
    bound = math.exp(epsilon) * SLACK
    checked = 0
    for z in set(hist_x) | set(hist_y):
        px = hist_x.get(z, 0) / n
        py = hist_y.get(z, 0) / n
        if min(px, py) < MIN_MASS:
            continue
        checked += 1
        assert px <= bound * py, (z, px, py)
        assert py <= bound * px, (z, px, py)
    assert checked > 0, "no overlapping mass to check — test is vacuous"


class TestNonZeroMeanLaplace:
    """Theorem 2: a shifted mean does not weaken the guarantee."""

    @pytest.mark.parametrize("mu", (-5.0, -1.0, 3.0))
    def test_ratio_bound_various_means(self, mu):
        epsilon = 1.0
        mech = LaplaceMechanism(epsilon)
        rng = random.Random(17)
        hist_x: Counter = Counter()
        hist_y: Counter = Counter()
        for _ in range(RUNS):
            hist_x[mech.perturb_count(4, rng, mu=mu, lower=0, upper=30)] += 1
            hist_y[mech.perturb_count(5, rng, mu=mu, lower=0, upper=30)] += 1
        assert_ratio_bound(hist_x, hist_y, epsilon, RUNS)


class TestGlobalMechanismAdjacency:
    """Algorithm 1 on datasets differing in exactly one trajectory."""

    def test_tf_output_distribution_bounded(self):
        epsilon = 1.0
        # The probe location is visited by 3 trajectories in D and by
        # 4 in D' (adjacent: D' adds one trajectory through it).
        probe = (0.0, 0.0)
        mech = GlobalTFMechanism(epsilon)
        rng = random.Random(23)
        hist_x: Counter = Counter()
        hist_y: Counter = Counter()
        for _ in range(RUNS):
            hist_x[
                mech.perturb({probe: 3}, dataset_size=10, rng=rng).perturbed[probe]
            ] += 1
            hist_y[
                mech.perturb({probe: 4}, dataset_size=10, rng=rng).perturbed[probe]
            ] += 1
        assert_ratio_bound(hist_x, hist_y, epsilon, RUNS)


class TestLocalMechanismAdjacency:
    """Theorem 3: Algorithm 2 on trajectories differing in one point."""

    def _perturbed_vector(self, mech, trajectory, index, rng):
        result = mech.perturb_trajectory(trajectory, index, rng)
        return tuple(sorted(result.perturbed.items()))

    def test_pf_output_distribution_bounded(self):
        epsilon = 1.0
        # Adjacent trajectories: tau' has one extra occurrence of the
        # signature location (1,1). Use a 2-location world so the full
        # output vector is enumerable.
        base = [(1, 1), (1, 1), (2, 2), (1, 1), (2, 2)]
        ds_x = TrajectoryDataset([traj("a", base)])
        ds_y = TrajectoryDataset([traj("a", base + [(1, 1)])])
        mech = LocalPFMechanism(epsilon=epsilon, m=1)
        rng = random.Random(31)
        hist_x: Counter = Counter()
        hist_y: Counter = Counter()
        index_x = SignatureExtractor(m=1).extract(ds_x)
        index_y = SignatureExtractor(m=1).extract(ds_y)
        for _ in range(RUNS // 2):
            hist_x[self._perturbed_vector(mech, ds_x[0], index_x, rng)] += 1
            hist_y[self._perturbed_vector(mech, ds_y[0], index_y, rng)] += 1
        assert_ratio_bound(hist_x, hist_y, epsilon, RUNS // 2)

    def test_total_epsilon_composition_bound(self):
        """GL's advertised budget equals the sum of its stages' budgets
        and the accountant blocks anything beyond it."""
        from repro.core.laplace import BudgetExceededError, PrivacyAccountant

        accountant = PrivacyAccountant(1.0)
        accountant.spend("global", 0.5)
        accountant.spend("local", 0.5)
        with pytest.raises(BudgetExceededError):
            accountant.spend("extra", 0.01)
