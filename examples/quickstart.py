#!/usr/bin/env python
"""Quickstart: anonymize a taxi fleet with the GL model in ~20 lines.

Run with::

    python examples/quickstart.py
"""

from repro import FleetConfig, MethodSpec, generate_fleet, run

def main() -> None:
    # 1. A synthetic T-Drive-like fleet: 40 taxis on a road network,
    #    each with a home and personal haunts (their future signatures).
    fleet = generate_fleet(
        FleetConfig(n_objects=40, points_per_trajectory=150, rows=16, cols=16, seed=1)
    )
    print("original :", fleet.dataset.stats())

    # 2. The paper's full model: global TF + local PF randomization,
    #    total privacy budget eps = 1.0 split evenly (Theorem 1).
    #    A MethodSpec names any registered method declaratively; run()
    #    returns the output and the run report together.
    spec = MethodSpec("gl", {"epsilon": 1.0, "signature_size": 5, "seed": 0})
    result = run(spec, fleet.dataset)
    private = result.dataset
    print("anonymized:", private.stats())

    # 3. What happened, exactly?
    report = result.report
    print(f"\ntotal privacy budget  eps = {report.epsilon_total}")
    for label, epsilon in report.budget_ledger:
        print(f"  spent {epsilon:.2f} on {label}")
    print(f"global modification: {report.global_report.insertions} insertions, "
          f"{report.global_report.deletions} deletions")
    print(f"local  modification: {report.local_report.insertions} insertions, "
          f"{report.local_report.deletions} deletions")
    print(f"accumulated utility loss: {report.utility_loss / 1000.0:.1f} km")

    # 4. The headline effect: the most identifying location of taxi 0
    #    no longer dominates its trajectory.
    from repro.core.signature import SignatureExtractor

    signature = SignatureExtractor(m=1).extract(fleet.dataset)
    top = signature.signatures["obj00000"][0]
    before = fleet.dataset[0].point_frequencies()[top.loc]
    after = private[0].point_frequencies().get(top.loc, 0)
    print(f"\ntaxi obj00000's top signature point {top.loc}:")
    print(f"  visited {before}x before anonymization, {after}x after")


if __name__ == "__main__":
    main()
