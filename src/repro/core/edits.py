"""Trajectory edit operations with utility-loss accounting (Section IV-A).

:class:`EditableTrajectory` wraps a trajectory in a doubly-linked list of
points and keeps a segment index synchronised through edits, so the
modification optimisers can repeatedly run K-nearest-segment searches
against the *current* shape of the trajectory (the paper's
``ModifyAndUpdate``, Algorithm 3 line 36).

Utility losses follow Definitions 5 and 6:

* inserting ``q`` into segment ``<a, b>`` costs ``dist(q, <a, b>)``;
* deleting the middle point of ``<a, q, b>`` costs ``dist(q, <a, b>)`` —
  the distance from the removed point to the segment that replaces it.

Boundary deletions (head or tail of the trajectory) have no replacement
segment; we charge the distance to the single surviving neighbour, the
natural degenerate case of Definition 6 (the "segment" collapses to a
point).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.geometry import Coord, point_distance, point_segment_distance
from repro.index.base import SegmentIndex, bulk_insert
from repro.trajectory.model import LocationKey, Point, Trajectory


class _Node:
    """A point in the doubly-linked edit structure."""

    __slots__ = ("point", "prev", "next", "out_sid", "seq")

    _counter = 0

    def __init__(self, point: Point) -> None:
        self.point = point
        self.prev: _Node | None = None
        self.next: _Node | None = None
        #: Id of the indexed segment (self -> self.next), if any.
        self.out_sid: int | None = None
        #: Creation order, used as a deterministic tie-breaker when
        #: sorting occurrences by cost (node sets otherwise iterate in
        #: memory-address order, which varies between runs).
        _Node._counter += 1
        self.seq = _Node._counter


@dataclass(slots=True)
class EditOutcome:
    """Result of one edit operation."""

    utility_loss: float
    #: How many points were inserted (positive) or deleted (negative).
    delta_points: int


class EditableTrajectory:
    """A trajectory under modification, with a live segment index.

    Parameters
    ----------
    trajectory:
        The source trajectory (copied; the original is not mutated).
    index:
        Any :class:`repro.index.base.SegmentIndex`. May be shared
        between several editable trajectories (the inter-trajectory
        modifier shares one dataset-wide index); segments are registered
        with ``owner=trajectory.object_id`` so searches can aggregate
        by trajectory.
    """

    def __init__(self, trajectory: Trajectory, index: SegmentIndex) -> None:
        self.object_id = trajectory.object_id
        self.index = index
        self._head: _Node | None = None
        self._tail: _Node | None = None
        self._size = 0
        self._nodes_by_loc: dict[LocationKey, set[_Node]] = {}
        self._node_by_sid: dict[int, _Node] = {}
        self.total_utility_loss = 0.0
        self._bbox_cache: tuple | None = None
        starts: list[_Node] = []
        previous: _Node | None = None
        for point in trajectory:
            node = _Node(point)
            self._register_node(node)
            if previous is None:
                self._head = node
            else:
                previous.next = node
                node.prev = previous
                starts.append(previous)
            previous = node
        self._tail = previous
        # Bulk-register the initial segments: one vectorised placement
        # pass on indexes that support it, with sid assignment
        # identical to the per-segment loop.
        if starts:
            sids = bulk_insert(
                self.index,
                [(n.point.coord, n.next.point.coord) for n in starts],
                owner=self.object_id,
            )
            for node, sid in zip(starts, sids, strict=True):
                node.out_sid = sid
                self._node_by_sid[sid] = node

    # -- bookkeeping -----------------------------------------------------------

    def _register_node(self, node: _Node) -> None:
        self._nodes_by_loc.setdefault(node.point.loc, set()).add(node)
        self._size += 1
        self._bbox_cache = None

    def _unregister_node(self, node: _Node) -> None:
        bucket = self._nodes_by_loc.get(node.point.loc)
        if bucket is not None:
            bucket.discard(node)
            if not bucket:
                del self._nodes_by_loc[node.point.loc]
        self._size -= 1
        self._bbox_cache = None

    def _index_segment(self, start: _Node) -> None:
        assert start.next is not None
        sid = self.index.insert(
            start.point.coord, start.next.point.coord, owner=self.object_id
        )
        start.out_sid = sid
        self._node_by_sid[sid] = start

    def _unindex_segment(self, start: _Node) -> None:
        if start.out_sid is not None:
            self.index.remove(start.out_sid)
            del self._node_by_sid[start.out_sid]
            start.out_sid = None

    def __len__(self) -> int:
        return self._size

    def occurrence_count(self, loc: LocationKey) -> int:
        return len(self._nodes_by_loc.get(loc, ()))

    def contains(self, loc: LocationKey) -> bool:
        return loc in self._nodes_by_loc

    def locations(self):
        """The distinct locations currently on the trajectory (a live
        view; iterate before mutating)."""
        return self._nodes_by_loc.keys()

    def node_for_segment(self, sid: int) -> bool:
        return sid in self._node_by_sid

    def bbox(self):
        """Current bounding box (cached; invalidated by edits).

        Returns None for an empty trajectory. Used by the paper's
        future-work optimisation: pruning unpromising trajectories by
        their bounding box during inter-trajectory modification.
        """
        if self._size == 0:
            return None
        if self._bbox_cache is None:
            from repro.geo.geometry import BBox

            coords = []
            node = self._head
            while node is not None:
                coords.append(node.point.coord)
                node = node.next
            self._bbox_cache = BBox.from_points(coords)
        return self._bbox_cache

    def min_possible_insertion_cost(self, loc: LocationKey) -> float:
        """Lower bound on the insertion loss of ``loc`` (Theorem 4 style).

        The distance from ``loc`` to the trajectory's bounding box
        lower-bounds its distance to every segment, so a trajectory can
        be pruned when this bound exceeds the current K-th best cost.
        """
        box = self.bbox()
        if box is None:
            return float("inf")
        return box.min_distance(loc)

    def nearest_own_segment(self, loc: LocationKey) -> tuple[int | None, float]:
        """This trajectory's nearest segment to ``loc`` (exact scan)."""
        best_sid = None
        best = float("inf")
        for sid, node in self._node_by_sid.items():
            assert node.next is not None
            d = point_segment_distance(
                loc, node.point.coord, node.next.point.coord
            )
            if d < best:
                best = d
                best_sid = sid
        return best_sid, best

    # -- insertion (OP_i) ----------------------------------------------------------

    def insertion_cost(self, q: Coord, sid: int) -> float:
        """dist(q, segment sid) — Definition 5."""
        start = self._node_by_sid[sid]
        assert start.next is not None
        return point_segment_distance(q, start.point.coord, start.next.point.coord)

    def insert_into_segment(self, loc: LocationKey, sid: int) -> EditOutcome:
        """Insert an occurrence of ``loc`` into segment ``sid``.

        The segment is replaced in the index by the two halves created
        by the splice.
        """
        start = self._node_by_sid.get(sid)
        if start is None:
            raise KeyError(f"segment {sid} does not belong to {self.object_id}")
        after = start.next
        assert after is not None
        loss = point_segment_distance(loc, start.point.coord, after.point.coord)
        t = (start.point.t + after.point.t) / 2.0
        node = _Node(Point(loc[0], loc[1], t))
        self._unindex_segment(start)
        start.next = node
        node.prev = start
        node.next = after
        after.prev = node
        self._register_node(node)
        self._index_segment(start)
        self._index_segment(node)
        self.total_utility_loss += loss
        return EditOutcome(utility_loss=loss, delta_points=1)

    def append(self, loc: LocationKey) -> EditOutcome:
        """Append an occurrence at the tail (fallback when no segment exists)."""
        t = self._tail.point.t + 1.0 if self._tail is not None else 0.0
        node = _Node(Point(loc[0], loc[1], t))
        loss = 0.0
        if self._tail is None:
            self._head = self._tail = node
        else:
            loss = point_distance(self._tail.point.coord, node.point.coord)
            self._tail.next = node
            node.prev = self._tail
            self._index_segment(self._tail)
            self._tail = node
        self._register_node(node)
        self.total_utility_loss += loss
        return EditOutcome(utility_loss=loss, delta_points=1)

    # -- deletion (OP_d) -------------------------------------------------------------

    def deletion_cost(self, node: _Node) -> float:
        """Cost of removing ``node`` — Definition 6 (or its boundary case)."""
        before = node.prev
        after = node.next
        if before is not None and after is not None:
            return point_segment_distance(
                node.point.coord, before.point.coord, after.point.coord
            )
        neighbour = before or after
        if neighbour is None:
            return 0.0
        return point_distance(node.point.coord, neighbour.point.coord)

    def occurrence_costs(self, loc: LocationKey) -> list[tuple[float, _Node]]:
        """Deletion cost of each current occurrence of ``loc``, cheapest first."""
        nodes = self._nodes_by_loc.get(loc, ())
        costs = [(self.deletion_cost(node), node) for node in nodes]
        costs.sort(key=lambda item: (item[0], item[1].seq))
        return costs

    def delete_node(self, node: _Node) -> EditOutcome:
        """Remove one occurrence, reconnecting and re-indexing neighbours."""
        loss = self.deletion_cost(node)
        before = node.prev
        after = node.next
        if before is not None:
            self._unindex_segment(before)
        if after is not None:
            self._unindex_segment(node)
        if before is not None and after is not None:
            before.next = after
            after.prev = before
            self._index_segment(before)
        elif before is not None:  # deleting the tail
            before.next = None
            self._tail = before
        elif after is not None:  # deleting the head
            after.prev = None
            self._head = after
        else:  # deleting the only point
            self._head = self._tail = None
        self._unregister_node(node)
        self.total_utility_loss += loss
        return EditOutcome(utility_loss=loss, delta_points=-1)

    def delete_cheapest(self, loc: LocationKey, count: int) -> EditOutcome:
        """Delete up to ``count`` occurrences of ``loc``, cheapest first.

        Costs are recomputed after every removal since deleting one
        occurrence changes its neighbours' replacement segments.
        """
        total = 0.0
        removed = 0
        for _ in range(count):
            costs = self.occurrence_costs(loc)
            if not costs:
                break
            _, node = costs[0]
            outcome = self.delete_node(node)
            total += outcome.utility_loss
            removed += 1
        return EditOutcome(utility_loss=total, delta_points=-removed)

    def delete_all(self, loc: LocationKey) -> EditOutcome:
        """Remove every occurrence of ``loc`` (TF-decrease semantics)."""
        return self.delete_cheapest(loc, self.occurrence_count(loc))

    def adjacent_locations(self, loc: LocationKey) -> set[LocationKey]:
        """Locations of the surviving neighbours of every ``loc`` run.

        Exactly the locations whose own deletion costs change when
        ``delete_all(loc)`` runs: a node's cost reads only its direct
        neighbours, and deleting every occurrence of ``loc`` re-links
        precisely the nodes flanking each maximal run of them. The
        wave planner uses this as decrease-conflict evidence.
        """
        adjacent: set[LocationKey] = set()
        for node in self._nodes_by_loc.get(loc, ()):
            for neighbour in (node.prev, node.next):
                if neighbour is not None and neighbour.point.loc != loc:
                    adjacent.add(neighbour.point.loc)
        return adjacent

    def complete_deletion_cost(self, loc: LocationKey) -> float:
        """L[OP_d(q, τ)]: total cost of removing every occurrence of ``loc``.

        Evaluated non-destructively on the current state (summing the
        current per-occurrence costs), which matches the paper's
        aggregate definition.
        """
        return sum(cost for cost, _ in self.occurrence_costs(loc))

    # -- export -----------------------------------------------------------------------

    def to_trajectory(self) -> Trajectory:
        points = []
        node = self._head
        while node is not None:
            points.append(node.point)
            node = node.next
        return Trajectory(self.object_id, points)

    def detach(self) -> None:
        """Remove all of this trajectory's segments from the shared index."""
        node = self._head
        while node is not None:
            self._unindex_segment(node)
            node = node.next
