"""DPT: differentially private trajectory synthesis [10].

DPT models movement with hierarchical reference systems and prefix
trees, injects Laplace noise into the transition counts, and generates
*synthetic* trajectories from the noisy model — no output trajectory
corresponds to any real one.

This implementation keeps DPT's essential pipeline at a single
reference-system resolution: a uniform grid discretization, a noisy
prefix tree of configurable ``order`` (order 1 = Markov transitions;
order 2 conditions on the previous two cells with back-off to order 1,
approximating DPT's taller prefix trees), and sampling-based synthesis.
The privacy budget is split evenly between start counts, transition
counts, and trip lengths.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from typing import TYPE_CHECKING

from repro.core.accounting import CompositionLedger
from repro.core.laplace import LaplaceMechanism
from repro.geo.geometry import BBox
from repro.trajectory.model import Point, Trajectory, TrajectoryDataset

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.api.spec import MethodSpec
    from repro.core.pipeline import AnonymizationReport

Cell = tuple[int, int]


class DPT:
    """Synthetic generation from a noisy prefix tree."""

    def __init__(
        self,
        epsilon: float = 1.0,
        grid: int = 24,
        order: int = 1,
        sampling_interval: float = 186.0,
        seed: int | None = None,
    ) -> None:
        if grid < 2:
            raise ValueError("grid must be at least 2")
        if order not in (1, 2):
            raise ValueError("order must be 1 or 2")
        self.epsilon = epsilon
        self.grid = grid
        self.order = order
        self.sampling_interval = sampling_interval
        self.seed = seed
        # Even three-way budget split: starts, transitions, lengths.
        # (With order 2, the transition share is split again between
        # the two tree depths.)
        self._mechanism = LaplaceMechanism(epsilon / 3.0)
        self._deep_mechanism = LaplaceMechanism(epsilon / 6.0)

    def config(self) -> dict:
        """Constructor kwargs reproducing this configuration."""
        return {
            "epsilon": self.epsilon,
            "grid": self.grid,
            "order": self.order,
            "sampling_interval": self.sampling_interval,
            "seed": self.seed,
        }

    def spec(self) -> "MethodSpec":
        """This configuration as a declarative, serializable spec."""
        from repro.api.spec import MethodSpec

        return MethodSpec("dpt", self.config())

    # -- discretization ---------------------------------------------------------

    def _cell_of(self, x: float, y: float, bbox: BBox) -> Cell:
        cx = int((x - bbox.min_x) / max(bbox.width, 1e-9) * self.grid)
        cy = int((y - bbox.min_y) / max(bbox.height, 1e-9) * self.grid)
        return (min(max(cx, 0), self.grid - 1), min(max(cy, 0), self.grid - 1))

    def _cell_centre(self, cell: Cell, bbox: BBox) -> tuple[float, float]:
        return (
            bbox.min_x + (cell[0] + 0.5) * bbox.width / self.grid,
            bbox.min_y + (cell[1] + 0.5) * bbox.height / self.grid,
        )

    def _cell_sequence(self, trajectory: Trajectory, bbox: BBox) -> list[Cell]:
        cells: list[Cell] = []
        for p in trajectory:
            cell = self._cell_of(p.x, p.y, bbox)
            if not cells or cells[-1] != cell:
                cells.append(cell)
        return cells

    # -- model building ------------------------------------------------------------

    def _noisy_counter(
        self, counts: Counter, rng: random.Random, mechanism=None
    ) -> Counter:
        mechanism = mechanism or self._mechanism
        noisy = Counter()
        for key in sorted(counts):
            value = mechanism.perturb_count(counts[key], rng, lower=0)
            if value > 0:
                noisy[key] = value
        return noisy

    def anonymize(self, dataset: TrajectoryDataset) -> TrajectoryDataset:
        result, _ = self.anonymize_with_report(dataset)
        return result

    def anonymize_with_report(
        self, dataset: TrajectoryDataset
    ) -> "tuple[TrajectoryDataset, AnonymizationReport]":
        """Synthesize and return ``(dataset, report)`` together.

        The report's :class:`CompositionLedger` records each model
        feature's Laplace draw next to where it happens, so DPT's
        budget split composes through the same audit trail as the
        frequency pipeline's.
        """
        from repro.core.pipeline import AnonymizationReport

        ledger = CompositionLedger()
        report = AnonymizationReport(
            epsilon_total=self.epsilon, accounting=ledger, spec=self.spec()
        )
        result = self._synthesize_dataset(dataset, ledger)
        report.budget_ledger = [
            (draw.label, draw.epsilon) for draw in ledger.draws
        ]
        return result, report

    def _synthesize_dataset(
        self, dataset: TrajectoryDataset, ledger: CompositionLedger
    ) -> TrajectoryDataset:
        if len(dataset) == 0:
            return dataset.copy()
        rng = random.Random(self.seed)
        bbox = dataset.bbox()

        starts: Counter = Counter()
        transitions: dict[Cell, Counter] = defaultdict(Counter)
        deep_transitions: dict[tuple[Cell, Cell], Counter] = defaultdict(Counter)
        lengths: Counter = Counter()
        for trajectory in dataset:
            cells = self._cell_sequence(trajectory, bbox)
            if not cells:
                continue
            starts[cells[0]] += 1
            # Length histogram binned by 16 moves (keeps sensitivity 1).
            lengths[len(cells) // 16] += 1
            for a, b in zip(cells, cells[1:], strict=False):
                transitions[a][b] += 1
            if self.order >= 2:
                for a, b, c in zip(cells, cells[1:], cells[2:], strict=False):
                    deep_transitions[(a, b)][c] += 1

        noisy_starts = self._noisy_counter(starts, rng)
        ledger.record("dpt/start_counts", self.epsilon / 3.0)
        noisy_lengths = self._noisy_counter(lengths, rng)
        ledger.record("dpt/trip_lengths", self.epsilon / 3.0)
        depth_mechanism = (
            self._deep_mechanism if self.order >= 2 else self._mechanism
        )
        ledger.record(
            "dpt/transitions",
            self.epsilon / (6.0 if self.order >= 2 else 3.0),
        )
        noisy_transitions = {
            cell: counter
            for cell, counter in (
                (c, self._noisy_counter(k, rng, depth_mechanism))
                for c, k in sorted(transitions.items())
            )
            if counter
        }
        noisy_deep: dict[tuple[Cell, Cell], Counter] = {}
        if self.order >= 2:
            ledger.record("dpt/deep_transitions", self.epsilon / 6.0)
            noisy_deep = {
                context: counter
                for context, counter in (
                    (ctx, self._noisy_counter(k, rng, self._deep_mechanism))
                    for ctx, k in sorted(deep_transitions.items())
                )
                if counter
            }

        synthetic = [
            self._synthesize(
                f"dpt{index:05d}",
                noisy_starts,
                noisy_transitions,
                noisy_deep,
                noisy_lengths,
                bbox,
                rng,
            )
            for index in range(len(dataset))
        ]
        return TrajectoryDataset(synthetic)

    # -- synthesis -------------------------------------------------------------------

    @staticmethod
    def _sample(counter: Counter, rng: random.Random):
        total = sum(counter.values())
        roll = rng.uniform(0.0, total)
        cumulative = 0.0
        for key in sorted(counter):
            cumulative += counter[key]
            if roll <= cumulative:
                return key
        return max(counter)

    def _synthesize(
        self,
        object_id: str,
        starts: Counter,
        transitions: dict[Cell, Counter],
        deep_transitions: dict[tuple[Cell, Cell], Counter],
        lengths: Counter,
        bbox: BBox,
        rng: random.Random,
    ) -> Trajectory:
        if not starts:
            return Trajectory(object_id, [])
        current = self._sample(starts, rng)
        bin_index = self._sample(lengths, rng) if lengths else 1
        target = max(2, bin_index * 16 + rng.randrange(16))
        cells = [current]
        while len(cells) < target:
            options = None
            if self.order >= 2 and len(cells) >= 2:
                # Prefix-tree walk: prefer the deeper context, back off
                # to order 1 when the noisy tree lacks it.
                options = deep_transitions.get((cells[-2], cells[-1]))
            if not options:
                options = transitions.get(current)
            if not options:
                break
            current = self._sample(options, rng)
            cells.append(current)
        t = 0.0
        points = []
        for cell in cells:
            x, y = self._cell_centre(cell, bbox)
            points.append(Point(x, y, t))
            t += self.sampling_interval
        return Trajectory(object_id, points)
