"""Rule base class and the registry of stable rule codes.

A rule is a named check with a stable code (``DP001`` etc.), a short
summary, a rationale tied to one of the repo's runtime invariants, and
a ``check(project)`` that yields :class:`~repro.analysis.findings.Finding`
objects. Rules register themselves via the :func:`rule` decorator at
import time; :func:`all_rules` returns them sorted by code so output
ordering is deterministic.

Extending the analyzer is: subclass :class:`Rule`, decorate with
``@rule``, yield findings from ``check``. See ``docs/analysis.md``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Type

from .findings import Finding
from .visitor import Project


class Rule:
    """One static check with a stable code."""

    #: Stable identifier, never reused (``DP001``).
    code: str = ""
    #: Short human name (``unledgered noise``).
    name: str = ""
    #: One-line description of what fires.
    summary: str = ""
    #: Why the project cares — which invariant this protects.
    rationale: str = ""
    #: A minimal violating snippet, used in docs and --list-rules.
    example: str = ""

    def check(self, project: Project) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, module, node, message: str) -> Finding:
        """Convenience: a Finding at ``node``'s location in ``module``."""
        line = getattr(node, "lineno", 1)
        return Finding(
            code=self.code,
            path=module.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            snippet=module.line(line),
        )


_REGISTRY: dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: register ``cls`` under its stable code."""
    if not cls.code:
        raise ValueError(f"{cls.__name__} declares no code")
    existing = _REGISTRY.get(cls.code)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"rule code {cls.code!r} already registered by "
            f"{existing.__name__}"
        )
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    from . import builtin, callgraph  # noqa: F401  (registration side effect)

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rules_for(codes: Iterable[str] | None) -> list[Rule]:
    """Rule instances restricted to ``codes`` (all when None)."""
    rules = all_rules()
    if codes is None:
        return rules
    wanted = {code.upper() for code in codes}
    known = {r.code for r in rules}
    unknown = wanted - known
    if unknown:
        raise KeyError(
            f"unknown rule code(s): {', '.join(sorted(unknown))} "
            f"(have: {', '.join(sorted(known))})"
        )
    return [r for r in rules if r.code in wanted]


def iter_codes() -> Iterator[str]:
    from . import builtin, callgraph  # noqa: F401

    yield from sorted(_REGISTRY)
