"""Recovery-attack metrics: route P/R/F1, RMF, point accuracy.

Route-based scores [36] compare the recovered edge set against the
ground-truth route, weighted by edge length:

* precision — correctly recovered length / total recovered length;
* recall    — correctly recovered length / ground-truth length;
* F-score   — their harmonic mean;
* RMF (route mismatch fraction) — (d+ + d-) / d0 where d+ is
  erroneously added length, d- is missed length, and d0 the truth
  length. RMF can exceed 1 when the anonymized data makes the matcher
  hallucinate long detours — the paper points this out for the
  frequency-based models.

Point-based accuracy [35] is the fraction of original samples that lie
within ``tolerance`` metres of the recovered route polyline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.recovery import RecoveryOutput
from repro.datagen.road_network import RoadNetwork
from repro.geo.geometry import point_segment_distance
from repro.trajectory.model import Trajectory, TrajectoryDataset

EdgeKey = tuple[int, int]


@dataclass(frozen=True, slots=True)
class RecoveryMetrics:
    """Dataset-level recovery scores (means over trajectories)."""

    precision: float
    recall: float
    f_score: float
    rmf: float
    accuracy: float


def _edge_length(network: RoadNetwork, key: EdgeKey) -> float:
    from repro.geo.geometry import point_distance

    return point_distance(network.node_coord(key[0]), network.node_coord(key[1]))


def _route_scores(
    network: RoadNetwork,
    truth: list[EdgeKey],
    recovered: list[EdgeKey],
) -> tuple[float, float, float, float]:
    """(precision, recall, f, rmf) for one trajectory."""
    truth_set = set(truth)
    recovered_set = set(recovered)

    def length(keys) -> float:
        return sum(_edge_length(network, k) for k in keys)
    d0 = length(truth_set)
    d_recovered = length(recovered_set)
    d_correct = length(truth_set & recovered_set)
    d_added = d_recovered - d_correct
    d_missed = d0 - d_correct
    precision = d_correct / d_recovered if d_recovered > 0 else 0.0
    recall = d_correct / d0 if d0 > 0 else 0.0
    f_score = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    rmf = (d_added + d_missed) / d0 if d0 > 0 else 0.0
    return precision, recall, f_score, rmf


def _point_accuracy(
    network: RoadNetwork,
    original: Trajectory,
    recovered: list[EdgeKey],
    tolerance: float,
) -> float:
    """Fraction of original samples within tolerance of the recovered route."""
    if len(original) == 0:
        return 0.0
    if not recovered:
        return 0.0
    segments = [
        (network.node_coord(u), network.node_coord(v)) for u, v in recovered
    ]
    hits = 0
    for point in original:
        for a, b in segments:
            if point_segment_distance(point.coord, a, b) <= tolerance:
                hits += 1
                break
    return hits / len(original)


def score_recovery(
    network: RoadNetwork,
    original: TrajectoryDataset,
    truth_routes: dict[str, list[EdgeKey]],
    recovery: RecoveryOutput,
    tolerance: float = 75.0,
) -> RecoveryMetrics:
    """Score a recovery attack against ground truth.

    ``recovery`` results are positional with respect to ``original``;
    ``truth_routes`` maps original object ids to their true edge routes
    (as produced by the fleet generator).
    """
    if len(recovery.results) != len(original):
        raise ValueError("recovery output does not align with the original dataset")
    precisions, recalls, fs, rmfs, accuracies = [], [], [], [], []
    for trajectory, result in zip(original, recovery.results, strict=True):
        truth = truth_routes.get(trajectory.object_id, [])
        p, r, f, rmf = _route_scores(network, truth, result.edge_keys)
        precisions.append(p)
        recalls.append(r)
        fs.append(f)
        rmfs.append(rmf)
        accuracies.append(
            _point_accuracy(network, trajectory, result.edge_keys, tolerance)
        )

    def mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return RecoveryMetrics(
        precision=mean(precisions),
        recall=mean(recalls),
        f_score=mean(fs),
        rmf=mean(rmfs),
        accuracy=mean(accuracies),
    )
