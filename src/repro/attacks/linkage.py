"""The re-identification (linking) attack of [3].

Threat model: the adversary holds the *original* dataset and tries to
link each anonymized trajectory back to the moving object that produced
it. Following [3], each trajectory is summarised by a *signature* — a
sparse weighted feature vector — and linking picks the original profile
with the highest cosine similarity. Four signature variants capture
different movement features:

* **spatial** (LA_s): weighted visit distribution over space, top-K
  locations by PF x IDF weight;
* **temporal** (LA_t): visit distribution over hour-of-day;
* **spatiotemporal** (LA_st): joint (location, hour) distribution;
* **sequential** (LA_sq): distribution of consecutive location bigrams.

Locations are quantized to ``cell_size`` metres so methods that coarsen
geometry (generalization, synthesis) are linked at the granularity an
actual attacker would use.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.trajectory.model import Trajectory, TrajectoryDataset

SIGNATURE_KINDS = ("spatial", "temporal", "spatiotemporal", "sequential")


def _cell(x: float, y: float, cell_size: float) -> tuple[int, int]:
    return (int(math.floor(x / cell_size)), int(math.floor(y / cell_size)))


def _hour(t: float) -> int:
    return int(t // 3600) % 24


def cosine_similarity(a: dict, b: dict) -> float:
    """Cosine similarity of two sparse feature vectors."""
    if not a or not b:
        return 0.0
    dot = sum(weight * b[key] for key, weight in a.items() if key in b)
    norm_a = math.sqrt(sum(w * w for w in a.values()))
    norm_b = math.sqrt(sum(w * w for w in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


@dataclass(frozen=True, slots=True)
class LinkageResult:
    """Outcome of one linking run."""

    kind: str
    correct: int
    total: int
    #: object id -> the original object it was linked to.
    assignment: dict[str, str]

    @property
    def accuracy(self) -> float:
        """The paper's LA metric: fraction of correctly linked objects."""
        return self.correct / self.total if self.total else 0.0


class LinkageAttack:
    """Signature-based linking between anonymized and original data."""

    def __init__(self, cell_size: float = 250.0, top_k: int = 10) -> None:
        if cell_size <= 0:
            raise ValueError("cell size must be positive")
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        self.cell_size = cell_size
        self.top_k = top_k

    # -- profiles -------------------------------------------------------------------

    def _top_k(self, counts: Counter) -> dict:
        ranked = sorted(counts.items(), key=lambda item: (-item[1], str(item[0])))
        return dict(ranked[: self.top_k])

    def spatial_profile(self, trajectory: Trajectory, idf: dict | None = None) -> dict:
        counts: Counter = Counter(
            _cell(p.x, p.y, self.cell_size) for p in trajectory
        )
        if idf:
            weighted = Counter(
                {cell: count * idf.get(cell, 1.0) for cell, count in counts.items()}
            )
            return self._top_k(weighted)
        return self._top_k(counts)

    def temporal_profile(self, trajectory: Trajectory) -> dict:
        return self._top_k(Counter(_hour(p.t) for p in trajectory))

    def spatiotemporal_profile(self, trajectory: Trajectory) -> dict:
        return self._top_k(
            Counter(
                (_cell(p.x, p.y, self.cell_size), _hour(p.t)) for p in trajectory
            )
        )

    def sequential_profile(self, trajectory: Trajectory) -> dict:
        cells = [_cell(p.x, p.y, self.cell_size) for p in trajectory]
        distinct = [cells[0]] if cells else []
        for cell in cells[1:]:
            if cell != distinct[-1]:
                distinct.append(cell)
        return self._top_k(Counter(zip(distinct, distinct[1:], strict=False)))

    def _profile(self, trajectory: Trajectory, kind: str, idf: dict | None) -> dict:
        if kind == "spatial":
            return self.spatial_profile(trajectory, idf)
        if kind == "temporal":
            return self.temporal_profile(trajectory)
        if kind == "spatiotemporal":
            return self.spatiotemporal_profile(trajectory)
        if kind == "sequential":
            return self.sequential_profile(trajectory)
        raise ValueError(
            f"unknown signature kind {kind!r}; choose from {SIGNATURE_KINDS}"
        )

    def _idf(self, dataset: TrajectoryDataset) -> dict:
        """Inverse document frequency of cells across objects."""
        df: Counter = Counter()
        for trajectory in dataset:
            cells = {_cell(p.x, p.y, self.cell_size) for p in trajectory}
            df.update(cells)
        n = max(len(dataset), 1)
        return {cell: math.log(1.0 + n / count) for cell, count in df.items()}

    # -- linking -----------------------------------------------------------------------

    def link(
        self,
        original: TrajectoryDataset,
        anonymized: TrajectoryDataset,
        kind: str = "spatial",
    ) -> LinkageResult:
        """Link each anonymized trajectory to its most similar original.

        A link for the trajectory at position ``i`` counts as correct
        when it points at the original trajectory at position ``i`` —
        object identity is positional, so the attack also evaluates
        synthetic datasets whose object ids are fresh.
        """
        if kind not in SIGNATURE_KINDS:
            raise ValueError(
                f"unknown signature kind {kind!r}; choose from {SIGNATURE_KINDS}"
            )
        if len(original) != len(anonymized):
            raise ValueError("datasets must contain the same number of objects")
        idf = self._idf(original) if kind == "spatial" else None
        profiles = [
            self._profile(trajectory, kind, idf) for trajectory in original
        ]
        correct = 0
        assignment: dict[str, str] = {}
        for position, trajectory in enumerate(anonymized):
            probe = self._profile(trajectory, kind, idf)
            best_index = -1
            best_score = -1.0
            for index, profile in enumerate(profiles):
                score = cosine_similarity(probe, profile)
                if score > best_score:
                    best_score = score
                    best_index = index
            assignment[trajectory.object_id] = original[best_index].object_id
            if best_index == position:
                correct += 1
        return LinkageResult(
            kind=kind, correct=correct, total=len(anonymized), assignment=assignment
        )

    def linking_accuracy(
        self,
        original: TrajectoryDataset,
        anonymized: TrajectoryDataset,
        kind: str = "spatial",
    ) -> float:
        """Convenience wrapper returning just the LA value."""
        return self.link(original, anonymized, kind).accuracy
