"""The unit of static-analysis output: one :class:`Finding`.

A finding pins a rule violation to a file, line, and column, carries
the human message, and keeps the *snippet* — the stripped source line
it fired on — which is the line-number-independent identity the
baseline file matches against (code churn above a grandfathered
finding must not un-grandfather it).

This module is a leaf — stdlib only.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    #: Stable rule code (``"DP001"``, ``"RACE001"``, ...).
    code: str
    #: Path of the offending file, as reported (normally relative to
    #: the analysis root, POSIX separators).
    path: str
    #: 1-indexed line of the offending node.
    line: int
    #: 0-indexed column of the offending node.
    col: int
    #: Human explanation: what fired and what to do instead.
    message: str
    #: The stripped source line the finding fired on — the baseline
    #: matching key (robust against line-number drift).
    snippet: str = ""

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def render(self) -> str:
        """The one-line human form: ``path:line:col: CODE message``."""
        return f"{self.location()}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            code=payload["code"],
            path=payload["path"],
            line=int(payload["line"]),
            col=int(payload.get("col", 0)),
            message=payload["message"],
            snippet=payload.get("snippet", ""),
        )
