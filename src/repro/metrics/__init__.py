"""Evaluation metrics matching the paper's Table II columns.

* :mod:`repro.metrics.privacy` — mutual information (MI); linking
  accuracies come from :mod:`repro.attacks.linkage`;
* :mod:`repro.metrics.utility` — INF, DE, TE, FFP;
* :mod:`repro.metrics.patterns` — the frequent-pattern miner FFP uses;
* :mod:`repro.metrics.recovery` — route precision/recall/F1, RMF, and
  point-based accuracy for the recovery attack.
"""

from repro.metrics.privacy import mutual_information
from repro.metrics.utility import (
    diameter_error,
    frequent_pattern_f1,
    information_loss,
    trip_error,
)
from repro.metrics.recovery import RecoveryMetrics, score_recovery

__all__ = [
    "RecoveryMetrics",
    "diameter_error",
    "frequent_pattern_f1",
    "information_loss",
    "mutual_information",
    "score_recovery",
    "trip_error",
]
