"""Figure 4: impact of the privacy budget ε on PureG / PureL / GL.

Eight panels, each a metric-vs-ε series per model: LA_s, INF, DE, TE,
FFP, route-based F-score, route-based RMF, point-based Accuracy.
Invoke with::

    python -m repro.experiments.fig4 [smoke|default|large]
"""

from __future__ import annotations

import sys

from repro.datagen.generator import generate_fleet
from repro.experiments.config import ExperimentConfig
from repro.experiments.evaluate import evaluate_method
from repro.experiments.methods import build_our_models

#: The paper sweeps ε over [0.1, 10].
DEFAULT_EPSILONS = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0)

#: The eight panels of Figure 4 (metric keys from evaluate_method).
PANELS = ("LAs", "INF", "DE", "TE", "FFP", "F-score", "RMF", "Accuracy")


def run(
    config: ExperimentConfig | None = None,
    epsilons: tuple[float, ...] = DEFAULT_EPSILONS,
    verbose: bool = False,
) -> dict[str, dict[str, list[float | None]]]:
    """``{panel: {model: [value per ε]}}`` for the three models."""
    config = config or ExperimentConfig.default()
    fleet = generate_fleet(config.fleet)
    series: dict[str, dict[str, list[float | None]]] = {
        panel: {model: [] for model in ("PureG", "PureL", "GL")}
        for panel in PANELS
    }
    for epsilon in epsilons:
        swept = config.with_epsilon(epsilon)
        for model, anonymize in build_our_models(swept).items():
            anonymized = anonymize(fleet.dataset)
            evaluation = evaluate_method(
                fleet.dataset, anonymized, fleet, swept, synthetic=False
            )
            for panel in PANELS:
                series[panel][model].append(evaluation.values.get(panel))
            if verbose:
                print(f"  eps={epsilon:<5g} {model:<6s} done", file=sys.stderr)
    return series


def format_series(
    series: dict[str, dict[str, list[float | None]]],
    epsilons: tuple[float, ...] = DEFAULT_EPSILONS,
    charts: bool = False,
) -> str:
    lines = []
    for panel, models in series.items():
        lines.append(f"[{panel} vs eps]")
        lines.append(
            f"{'eps':<8s}" + "".join(f"{e:>8g}" for e in epsilons)
        )
        for model, values in models.items():
            cells = "".join(
                "     -  " if v is None else f"{v:8.3f}" for v in values
            )
            lines.append(f"{model:<8s}" + cells)
        if charts:
            from repro.experiments.charts import render_chart

            lines.append(
                render_chart(models, list(epsilons), title=f"{panel} vs eps")
            )
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    preset = argv[0] if argv else "default"
    config = {
        "smoke": ExperimentConfig.smoke,
        "default": ExperimentConfig.default,
        "large": ExperimentConfig.large,
    }[preset]()
    epsilons = DEFAULT_EPSILONS if preset != "smoke" else (0.5, 1.0, 5.0)
    print(f"Figure 4 reproduction — preset={preset}, eps sweep={epsilons}")
    series = run(config, epsilons=epsilons, verbose=True)
    print(format_series(series, epsilons, charts=True))


if __name__ == "__main__":
    main()
