"""The published anonymizers: PureG, PureL, and GL (Section V setup).

* :class:`PureG` — global TF randomization only (ε = ε_G);
* :class:`PureL` — local PF randomization only (ε = ε_L);
* :class:`GL` — both, composed sequentially; by Theorem 1 the total
  privacy budget is ε = ε_G + ε_L (the paper splits it evenly).

All three are thin configurations of :class:`FrequencyAnonymizer`,
which wires the mechanisms to the modification optimisers and a
:class:`~repro.core.laplace.PrivacyAccountant` that enforces the
advertised budget.
"""

from __future__ import annotations

import hashlib
import math
import os
import random
import threading
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.accounting import WHOLE_DATASET, CompositionLedger
from repro.core.global_mechanism import GlobalTFMechanism, TFPerturbation
from repro.core.laplace import PrivacyAccountant
from repro.core.local_mechanism import LocalPFMechanism, PFPerturbation
from repro.core.modification import (
    InterTrajectoryModifier,
    IntraTrajectoryModifier,
    ModificationReport,
    make_index_factory,
)
from repro.core.signature import SignatureExtractor, SignatureIndex
from repro.trajectory.model import Trajectory, TrajectoryDataset

if TYPE_CHECKING:  # imported lazily at runtime to keep core below api
    from repro.api.spec import MethodSpec


def derive_seed(*tokens: object) -> int:
    """A stable 64-bit seed derived from arbitrary tokens.

    Hash-based (BLAKE2b) rather than arithmetic so distinct token
    tuples give statistically independent streams, and stable across
    processes/runs (unlike ``hash()``) — the property the batch engine
    relies on to give every shard the same noise the serial path draws.
    """
    payload = "\x1f".join(str(token) for token in tokens).encode()
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")


def local_stream_seed(base_seed: int, object_id: str) -> int:
    """Seed of the per-trajectory noise stream of the local stage.

    Keyed by object id, not by position, so any sharding of the dataset
    reproduces exactly the serial draws.
    """
    return derive_seed(base_seed, "local", object_id)


#: One per-trajectory result of the local stage:
#: (object id, perturbation, modified trajectory, modification report).
LocalResult = tuple[str, PFPerturbation, Trajectory, ModificationReport]

#: Pluggable executor for the local stage: receives the dataset, its
#: signature index, and the per-call base seed; returns one
#: :data:`LocalResult` per trajectory *in dataset order*.
LocalRunner = Callable[[TrajectoryDataset, SignatureIndex, int], list[LocalResult]]


@dataclass(slots=True)
class AnonymizationReport:
    """Everything observable about one anonymization run."""

    epsilon_total: float
    budget_ledger: list[tuple[str, float]] = field(default_factory=list)
    #: Composition accounting of *this call's own* mechanism draws:
    #: which mechanism spent what over which slice of the data.  For a
    #: plain run both entries are sequential draws over the whole
    #: dataset and the ledger composes to :attr:`epsilon_total`.  Under
    #: the streaming publisher the local draw is scoped to the chunk
    #: and the shared TF draw is recorded once at publisher level, so
    #: a chunk's ledger deliberately composes to *less* than
    #: :attr:`epsilon_total` — the latter keeps stating the end-to-end
    #: guarantee of the published output (the shared draw covers this
    #: chunk too); the publisher's merged ledger is the full story.
    accounting: CompositionLedger | None = None
    global_report: ModificationReport | None = None
    local_report: ModificationReport | None = None
    tf_perturbation: TFPerturbation | None = None
    pf_perturbations: dict[str, PFPerturbation] | None = None
    #: Provenance: the :class:`~repro.api.spec.MethodSpec` describing
    #: the configuration that produced this run.
    spec: "MethodSpec | None" = None

    @property
    def utility_loss(self) -> float:
        total = 0.0
        if self.global_report is not None:
            total += self.global_report.utility_loss
        if self.local_report is not None:
            total += self.local_report.utility_loss
        return total

    def to_dict(self) -> dict:
        """JSON-serialisable summary of the run (for audit trails)."""

        def modification(report: ModificationReport | None) -> dict | None:
            if report is None:
                return None
            return {
                "utility_loss_m": report.utility_loss,
                "insertions": report.insertions,
                "deletions": report.deletions,
                "unrealised": report.unrealised,
            }

        return {
            "method": (
                None
                if self.spec is None
                else {**self.spec.to_dict(), "digest": self.spec.digest}
            ),
            "epsilon_total": self.epsilon_total,
            "budget_ledger": [
                {"mechanism": label, "epsilon": epsilon}
                for label, epsilon in self.budget_ledger
            ],
            "accounting": (
                None if self.accounting is None else self.accounting.to_dict()
            ),
            "global": modification(self.global_report),
            "local": modification(self.local_report),
            "utility_loss_m": self.utility_loss,
            "tf_locations_perturbed": (
                len(self.tf_perturbation.perturbed)
                if self.tf_perturbation is not None
                else 0
            ),
            "trajectories_locally_perturbed": (
                len(self.pf_perturbations)
                if self.pf_perturbations is not None
                else 0
            ),
        }


class FrequencyAnonymizer:
    """Frequency-based DP anonymization for trajectory datasets.

    Parameters
    ----------
    epsilon_global, epsilon_local:
        Privacy budgets of the two mechanisms. Pass ``None`` to disable
        a mechanism; at least one must be enabled. An explicit ``0.0``
        is rejected — a zero budget is not a valid ε and must not be
        silently conflated with "stage disabled" (the ledger records
        what was actually configured).
    signature_size:
        ``m`` — how many signature locations are extracted per
        trajectory. The local mechanism perturbs ``2m`` locations.
    index_backend, search_strategy, levels, granularity:
        Spatial-index configuration for the modification step (see
        :func:`repro.core.modification.make_index_factory`).
    candidate_source:
        How the global stage finds candidate trajectories:
        ``"wave"`` (default — the planner/executor path, byte-identical
        to the serial loop), ``"incremental"`` (the per-location lazy
        frontier), or ``"restart"`` (the restart-scan benchmark
        baseline). See :class:`~repro.core.modification
        .InterTrajectoryModifier`.
    global_first:
        GL composition order. The paper notes the ordering is
        exchangeable; the default applies global then local.
    seed:
        RNG seed for reproducible noise; ``None`` draws fresh entropy.
        Repeated :meth:`anonymize` calls on one seeded instance draw
        from *distinct* per-call streams (counter-mixed from the seed),
        so anonymizing several datasets never silently reuses the same
        noise; rebuilding the anonymizer with the same seed replays the
        same call sequence exactly.
    """

    def __init__(
        self,
        epsilon_global: float | None = 0.5,
        epsilon_local: float | None = 0.5,
        signature_size: int = 10,
        index_backend: str = "hierarchical",
        search_strategy: str = "bottom_up_down",
        trajectory_selection: str = "index",
        candidate_source: str = "wave",
        levels: int = 10,
        granularity: int = 512,
        global_first: bool = True,
        seed: int | None = None,
    ) -> None:
        for name, value in (
            ("epsilon_global", epsilon_global),
            ("epsilon_local", epsilon_local),
        ):
            if value is None:
                continue
            if math.isnan(value) or value < 0:
                raise ValueError(
                    f"{name} must be a non-negative privacy budget, got "
                    f"{value!r}"
                )
            if value == 0.0:
                raise ValueError(
                    f"{name}=0 is an explicit zero budget, which a Laplace "
                    f"mechanism cannot honour; pass {name}=None to disable "
                    f"the stage instead"
                )
        if epsilon_global is None and epsilon_local is None:
            raise ValueError("at least one of the two mechanisms must be enabled")
        self.epsilon_global = 0.0 if epsilon_global is None else float(epsilon_global)
        self.epsilon_local = 0.0 if epsilon_local is None else float(epsilon_local)
        self.signature_size = signature_size
        self.index_backend = index_backend
        self.search_strategy = search_strategy
        self.trajectory_selection = trajectory_selection
        self.candidate_source = candidate_source
        self.levels = levels
        self.granularity = granularity
        self.global_first = global_first
        self.seed = seed
        self.extractor = SignatureExtractor(m=signature_size)
        factory = make_index_factory(
            backend=index_backend, levels=levels, granularity=granularity
        )
        self._intra = IntraTrajectoryModifier(factory, strategy=search_strategy)
        self._inter = InterTrajectoryModifier(
            factory,
            strategy=search_strategy,
            trajectory_selection=trajectory_selection,
            candidate_source=candidate_source,
        )
        # Disabled means None (the constructor rejects explicit zeros
        # above), so the stage toggles key off the original arguments,
        # never off the float's truthiness.
        self._global = (
            None if epsilon_global is None else GlobalTFMechanism(self.epsilon_global)
        )
        self._local = (
            None
            if epsilon_local is None
            else LocalPFMechanism(self.epsilon_local, m=signature_size)
        )
        #: Backing store of the deprecated :attr:`last_report` alias.
        self._last_report: AnonymizationReport | None = None
        #: How many anonymize() calls this instance has served; mixes
        #: into each call's base seed so successive datasets get fresh
        #: noise while the run as a whole stays reproducible. Reserved
        #: under a lock so concurrent calls never share a stream.
        self._call_count = 0
        self._call_lock = threading.Lock()

    def config(self) -> dict:
        """Constructor kwargs reproducing this configuration.

        Everything here is picklable plain data, so the batch engine
        can rebuild equivalent anonymizers inside worker processes
        (the instance itself holds index-factory closures and cannot
        cross a process boundary).
        """
        return {
            "epsilon_global": None if self._global is None else self.epsilon_global,
            "epsilon_local": None if self._local is None else self.epsilon_local,
            "signature_size": self.signature_size,
            "index_backend": self.index_backend,
            "search_strategy": self.search_strategy,
            "trajectory_selection": self.trajectory_selection,
            "candidate_source": self.candidate_source,
            "levels": self.levels,
            "granularity": self.granularity,
            "global_first": self.global_first,
            "seed": self.seed,
        }

    @property
    def epsilon(self) -> float:
        """Total privacy budget ε = ε_G + ε_L (Theorem 1)."""
        return self.epsilon_global + self.epsilon_local

    def spec(self) -> "MethodSpec":
        """This configuration as a declarative, serializable spec.

        Kind ``"frequency"`` with :meth:`config` as params — the
        canonical form: ``repro.api.build(spec)`` (equivalently
        ``FrequencyAnonymizer(**spec.params)``) rebuilds an equivalent
        instance, and :attr:`~repro.api.spec.MethodSpec.digest` is its
        stable configuration identity. This is the engine's
        cross-process payload and the provenance recorded in reports.
        """
        from repro.api.spec import MethodSpec

        return MethodSpec("frequency", self.config())

    @property
    def last_report(self) -> AnonymizationReport | None:
        """Deprecated: the report of the most recent :meth:`anonymize`.

        Mutable shared state — concurrent runs clobber it. Use
        :meth:`anonymize_with_report` (or :func:`repro.api.run`), which
        return the report with the result.
        """
        warnings.warn(
            "FrequencyAnonymizer.last_report is deprecated; use "
            "anonymize_with_report() or repro.api.run(), which return "
            "the report with the result",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._last_report

    @last_report.setter
    def last_report(self, report: AnonymizationReport | None) -> None:
        warnings.warn(
            "FrequencyAnonymizer.last_report is deprecated; reports "
            "travel with the return value of anonymize_with_report() "
            "and repro.api.run()",
            DeprecationWarning,
            stacklevel=2,
        )
        self._last_report = report

    def reserve_call_index(self) -> int:
        """Atomically claim the next per-call noise-stream index."""
        with self._call_lock:
            index = self._call_count
            self._call_count = index + 1
            return index

    def base_seed_for(self, call_index: int) -> int:
        """The noise base of call ``call_index`` on this instance.

        The one definition of the per-call seed derivation, shared by
        :meth:`anonymize_with_report` and external drivers that must
        replay it bit-exactly (the streaming publisher derives the
        base all chunks of one publish share from here — drift here
        is drift in the byte-identity contract).
        """
        if self.seed is None:
            # Unseeded runs want fresh entropy; take it from the OS
            # explicitly rather than the process-global Mersenne
            # Twister, whose hidden state seeded runs must never touch.
            return int.from_bytes(os.urandom(8), "big")
        return derive_seed("run", self.seed, call_index)

    def anonymize(self, dataset: TrajectoryDataset) -> TrajectoryDataset:
        """Produce the ε-differentially-private dataset D*.

        Thin wrapper over :meth:`anonymize_with_report` that also
        stores the report in the deprecated :attr:`last_report` alias.
        """
        result, report = self.anonymize_with_report(dataset)
        self._last_report = report
        return result

    def anonymize_with_report(
        self,
        dataset: TrajectoryDataset,
        *,
        local_runner: LocalRunner | None = None,
        call_index: int | None = None,
        wave_map: Callable | None = None,
        tf_target: TFPerturbation | None = None,
        base_seed: int | None = None,
        scope: str = WHOLE_DATASET,
    ) -> tuple[TrajectoryDataset, AnonymizationReport]:
        """Produce D* and its :class:`AnonymizationReport` together.

        The input is never mutated and no result state is stored on
        the instance, so concurrent calls (e.g. under the batch
        engine's thread executor) can never observe each other's
        report — only the per-call stream counter is shared, and it is
        reserved atomically.

        Noise streams: each call derives a base seed from ``(seed,
        call index)``, and each stage (and each trajectory within the
        local stage) derives its own sub-stream from that base. Two
        calls on the same instance therefore use different noise, while
        a fresh instance with the same seed replays the same call
        sequence byte-for-byte — and the per-trajectory streams make
        the local stage order- and shard-independent.

        ``local_runner`` overrides the local-stage executor for this
        call only (the batch engine's sharding hook); ``call_index``
        pins the per-call stream explicitly instead of reserving the
        next one (worker processes replaying a specific call);
        ``wave_map`` fans the global stage's read-only wave-planning
        simulations over a pool (the batch engine's ``global_workers``
        hook; only meaningful with ``candidate_source="wave"``).

        ``tf_target`` injects an externally-drawn TF perturbation: the
        global stage then *realises* the given target on this dataset
        (pure modification, no fresh mechanism draw and no ε spend
        here — the draw is accounted for by whoever produced the
        target, e.g. :class:`repro.engine.publish.StreamPublisher`'s
        shared whole-dataset estimate).  ``base_seed`` pins the noise
        base directly (all chunks of one published stream share one
        base; per-trajectory streams stay disjoint because they are
        keyed by object id), and ``scope`` names the slice of the data
        this call covers in the report's composition ledger.
        """
        if base_seed is None:
            if call_index is None:
                call_index = self.reserve_call_index()
            base_seed = self.base_seed_for(call_index)
        accountant = PrivacyAccountant(self.epsilon)
        ledger = CompositionLedger()
        report = AnonymizationReport(
            epsilon_total=self.epsilon, accounting=ledger, spec=self.spec()
        )

        stages = ["global", "local"] if self.global_first else ["local", "global"]
        current = dataset
        for stage in stages:
            if stage == "global" and (
                self._global is not None or tf_target is not None
            ):
                current = self._run_global(
                    current,
                    base_seed,
                    accountant,
                    report,
                    wave_map,
                    tf_target=tf_target,
                    scope=scope,
                )
            elif stage == "local" and self._local is not None:
                current = self._run_local(
                    current,
                    base_seed,
                    accountant,
                    report,
                    local_runner,
                    scope=scope,
                )

        report.budget_ledger = accountant.ledger()
        return current, report

    def _run_global(
        self,
        dataset: TrajectoryDataset,
        base_seed: int,
        accountant: PrivacyAccountant,
        report: AnonymizationReport,
        wave_map: Callable | None = None,
        tf_target: TFPerturbation | None = None,
        scope: str = WHOLE_DATASET,
    ) -> TrajectoryDataset:
        if tf_target is not None:
            # Realising an injected target is modification only: the
            # mechanism draw behind it was made (and accounted for)
            # upstream, so this call spends nothing here.
            perturbation = tf_target
        else:
            accountant.spend("global TF randomization", self.epsilon_global)
            if report.accounting is not None:
                report.accounting.record(
                    "global TF randomization", self.epsilon_global, scope=scope
                )
            signature_index = self.extractor.extract(dataset)
            assert self._global is not None
            rng = random.Random(derive_seed(base_seed, "global"))
            perturbation = self._global.perturb(
                signature_index.tf, len(dataset), rng
            )
        modified, modification = self._inter.apply(
            dataset, perturbation, wave_map=wave_map
        )
        report.tf_perturbation = perturbation
        report.global_report = modification
        return modified

    def _run_local(
        self,
        dataset: TrajectoryDataset,
        base_seed: int,
        accountant: PrivacyAccountant,
        report: AnonymizationReport,
        local_runner: LocalRunner | None = None,
        scope: str = WHOLE_DATASET,
    ) -> TrajectoryDataset:
        accountant.spend("local PF randomization", self.epsilon_local)
        if report.accounting is not None:
            report.accounting.record(
                "local PF randomization", self.epsilon_local, scope=scope
            )
        signature_index = self.extractor.extract(dataset)
        runner = local_runner or self._run_local_serial
        results = runner(dataset, signature_index, base_seed)
        perturbations: dict[str, PFPerturbation] = {}
        modified = []
        total = ModificationReport()
        for object_id, perturbation, new_trajectory, modification in results:
            perturbations[object_id] = perturbation
            total.merge(modification)
            modified.append(new_trajectory)
        report.pf_perturbations = perturbations
        report.local_report = total
        return TrajectoryDataset(modified)

    def _run_local_serial(
        self,
        dataset: TrajectoryDataset,
        signature_index: SignatureIndex,
        base_seed: int,
    ) -> list[LocalResult]:
        """The in-process local stage; reference for any parallel runner."""
        assert self._local is not None
        results: list[LocalResult] = []
        for trajectory in dataset:
            rng = random.Random(local_stream_seed(base_seed, trajectory.object_id))
            perturbation = self._local.perturb_trajectory(
                trajectory, signature_index, rng
            )
            new_trajectory, modification = self._intra.apply(trajectory, perturbation)
            results.append(
                (trajectory.object_id, perturbation, new_trajectory, modification)
            )
        return results


class PureG(FrequencyAnonymizer):
    """Global-only variant: ε-DP via TF randomization alone."""

    def __init__(self, epsilon: float = 0.5, **kwargs) -> None:
        super().__init__(epsilon_global=epsilon, epsilon_local=None, **kwargs)


class PureL(FrequencyAnonymizer):
    """Local-only variant: ε-DP via PF randomization alone."""

    def __init__(self, epsilon: float = 0.5, **kwargs) -> None:
        super().__init__(epsilon_global=None, epsilon_local=epsilon, **kwargs)


class GL(FrequencyAnonymizer):
    """The full model: global + local, ε split evenly (paper default)."""

    def __init__(self, epsilon: float = 1.0, **kwargs) -> None:
        super().__init__(
            epsilon_global=epsilon / 2.0, epsilon_local=epsilon / 2.0, **kwargs
        )
