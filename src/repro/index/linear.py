"""Trivial no-structure index: the paper's *Linear* baseline.

Implements the same protocol as the grid indexes but answers kNN by a
full scan, so the modification machinery can run against it unchanged
for the efficiency comparison (Figure 5). Incremental iteration uses a
vectorised :class:`~repro.geo.vectorized.SegmentArray` distance pass
instead of a Python-level scan.
"""

from __future__ import annotations

from typing import Iterator

from repro.geo.geometry import Coord
from repro.index.base import IndexedSegment, SegmentRegistry
from repro.index.search import (
    iter_nearest_batch_via_single,
    knn_batch_via_knn,
    linear_knn,
)


class LinearSegmentIndex:
    """Stores segments in a registry; every query scans all of them."""

    def __init__(self) -> None:
        self._registry = SegmentRegistry()

    def insert(self, a: Coord, b: Coord, owner: str | None = None) -> int:
        return self._registry.allocate(a, b, owner).sid

    def remove(self, sid: int) -> None:
        self._registry.release(sid)

    def segment(self, sid: int) -> IndexedSegment:
        return self._registry.get(sid)

    def knn(self, q: Coord, k: int) -> list[tuple[int, float]]:
        return linear_knn(self._registry, q, k)

    def iter_nearest(self, q: Coord) -> Iterator[tuple[int, float]]:
        """All segments in ascending distance order, lazily.

        Snapshots the registry on first pull, then runs one vectorised
        distance computation over the whole batch — a single numpy pass
        beats repeated Python-level partial scans as soon as the index
        holds more than a handful of segments.
        """
        from repro.geo.vectorized import SegmentArray

        segments = list(self._registry)
        if not segments:
            return
        array = SegmentArray.from_pairs([(s.a, s.b) for s in segments])
        for row, dist in array.nearest_order(q):
            yield segments[row].sid, dist

    def knn_batch(self, qs, k: int) -> list[list[tuple[int, float]]]:
        """Per-query full scans (the honest linear-baseline batch)."""
        return knn_batch_via_knn(self, qs, k)

    def iter_nearest_batch(self, qs) -> list[Iterator[tuple[int, float]]]:
        return iter_nearest_batch_via_single(self, qs)

    def __len__(self) -> int:
        return len(self._registry)
