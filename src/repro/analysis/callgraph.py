"""Cross-module call-graph infrastructure and RACE001.

Besides the RACE001 rule this module hosts the shared interprocedural
machinery the flow-sensitive rules in :mod:`repro.analysis.builtin`
stitch through: :class:`FunctionTable` (every module-level function
and method of the analyzed project, with bare-name/import/alias
resolution) and :class:`Summaries` (per-function facts — which
parameters a function closes or settles, which locks it may acquire,
whether it returns a fresh resource — propagated to a fixpoint over
the call graph, so ``shutdown()`` calling ``self._spool.close()``
three frames down still counts as a close).

RACE001 — unlocked shared-state writes reachable from pool workers.

The engine fans work over thread pools in three places: the local-stage
shards (``parallel_map``), the sweep stream (``parallel_map_stream``),
and the wave planner's read-only simulations (the ``wave_map`` hook,
backed by ``pool.map``). Any function reachable from a callable handed
to one of those primitives runs concurrently with its siblings, so a
write to ``self.*`` or to a module global from such a function is a
data race unless it happens inside a ``with <lock>:`` block.

The reachability computation is a deliberately conservative call-graph
approximation:

* Entry points are the first argument of calls to ``parallel_map`` /
  ``parallel_map_stream``, of ``.map``/``.submit`` on receivers whose
  name mentions ``pool``/``executor``, and of any ``wave_map(...)``
  call.
* Edges follow bare-name calls to module-level functions (including
  ones imported from other analyzed modules), ``self.method()`` calls
  to methods of the same class, and simple local aliases — both
  ``simulate = self._simulate_increase`` and the conditional-worker
  pattern ``runner = _worker_function`` before the submitting call.
  Submitted workers wrapped in ``functools.partial(fn, ...)`` or a
  ``lambda`` are unwrapped to the underlying function(s).
* Calls on arbitrary receivers (``obj.method()``) are *not* followed:
  workers overwhelmingly call methods on worker-local objects they just
  built, and following them would drown the signal in false positives.

Flagged writes are assignments/augmented assignments/deletes whose
target is an attribute chain rooted at ``self`` or a name declared
``global``, lexically outside every ``with`` block whose context
expression mentions a lock.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dataclass_field
from typing import Iterable

from .findings import Finding
from .rules import Rule, rule
from .visitor import ModuleInfo, Project

#: Call names whose first argument is a worker callable.
_POOL_FUNCS = frozenset({"parallel_map", "parallel_map_stream"})
#: Attribute-call names that submit to an executor when the receiver
#: looks like one.
_SUBMIT_ATTRS = frozenset({"map", "submit"})
#: Receiver-name fragments identifying an executor object.
_POOL_RECEIVERS = ("pool", "executor")
#: Hook names that fan their first argument over a pool.
_HOOK_NAMES = frozenset({"wave_map"})


@dataclass(frozen=True)
class FuncKey:
    """Identity of one function in the cross-module call graph."""

    module: str
    cls: str | None
    name: str

    def label(self) -> str:
        qual = f"{self.cls}.{self.name}" if self.cls else self.name
        return f"{self.module}.{qual}"


@dataclass
class FuncNode:
    key: FuncKey
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    module: ModuleInfo


class FunctionTable:
    """Module-level functions and class methods of every analyzed module."""

    def __init__(self, project: Project) -> None:
        self.functions: dict[FuncKey, FuncNode] = {}
        self.modules = project.by_name()
        for module in project.modules:
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    key = FuncKey(module.name, None, node.name)
                    self.functions[key] = FuncNode(key, node, module)
                elif isinstance(node, ast.ClassDef):
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            key = FuncKey(module.name, node.name, item.name)
                            self.functions[key] = FuncNode(key, item, module)

    def module_function(self, module: ModuleInfo, name: str) -> FuncKey | None:
        """Resolve a bare name to a function: local module first, then
        through the import table to another analyzed module."""
        key = FuncKey(module.name, None, name)
        if key in self.functions:
            return key
        qualified = module.aliases.get(name)
        if qualified and "." in qualified:
            target_module, _, func = qualified.rpartition(".")
            if target_module in self.modules:
                key = FuncKey(target_module, None, func)
                if key in self.functions:
                    return key
        return None

    def method(self, module: ModuleInfo, cls: str, name: str) -> FuncKey | None:
        key = FuncKey(module.name, cls, name)
        return key if key in self.functions else None


#: Backwards-compatible private aliases (pre-dataflow callers).
_FuncKey = FuncKey
_FuncNode = FuncNode
_FunctionTable = FunctionTable


def param_names(func: ast.AST) -> list[str]:
    """Positional parameter names of ``func``, in call order."""
    args = func.args
    return [a.arg for a in (*args.posonlyargs, *args.args)]


def lock_name(module: ModuleInfo, cls: str | None, expr: ast.expr) -> str | None:
    """Stable identity of the lock acquired by ``with expr:``, or None
    when ``expr`` does not look like a lock.

    ``self.<attrs>`` locks unify across methods of the same class
    (``module.Class.attr``); anything else is keyed on its source text
    within the module (``module:text``) so repeated uses of e.g.
    ``account.lock`` in one module compare equal.
    """
    try:
        text = ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return None
    if "lock" not in text.lower():
        return None
    root = expr
    while isinstance(root, ast.Attribute):
        root = root.value
    if isinstance(root, ast.Name) and root.id == "self" and isinstance(expr, ast.Attribute):
        owner = cls or "self"
        return f"{module.name}.{owner}.{text.partition('.')[2]}"
    return f"{module.name}:{text}"


@dataclass
class FunctionSummary:
    """Interprocedural facts about one function, including callees."""

    #: Parameter names the function closes on some path (directly or
    #: by forwarding to a closing callee).
    closes: set[str] = dataclass_field(default_factory=set)
    #: Parameter names it settles (``.commit``/``.release``).
    settles: set[str] = dataclass_field(default_factory=set)
    #: Lock identities it may acquire (transitively).
    locks: set[str] = dataclass_field(default_factory=set)
    #: Resource class name when the function returns a fresh instance.
    returns_resource: str | None = None


@dataclass
class _CallSite:
    callee: FuncKey
    #: callee parameter name -> caller-local name passed for it.
    arg_map: dict[str, str]
    #: the Call result is returned directly (``return make()``).
    returned: bool


_CLOSE_ATTRS = frozenset({"close", "shutdown"})
_SETTLE_ATTRS = frozenset({"commit", "release"})


class Summaries:
    """Per-function summaries, closed under the project call graph."""

    def __init__(
        self,
        project: Project,
        table: FunctionTable | None = None,
        resource_classes: frozenset[str] = frozenset(),
    ) -> None:
        self.table = table if table is not None else FunctionTable(project)
        self.resource_classes = frozenset(resource_classes)
        self._summaries: dict[FuncKey, FunctionSummary] = {}
        self._calls: dict[FuncKey, list[_CallSite]] = {}
        for key, func in self.table.functions.items():
            self._scan(key, func)
        self._propagate()

    def for_key(self, key: FuncKey) -> FunctionSummary | None:
        return self._summaries.get(key)

    def resolve_call(
        self,
        module: ModuleInfo,
        cls: str | None,
        call: ast.Call,
    ) -> FuncKey | None:
        """The analyzed function a call statically resolves to, if any."""
        callee = call.func
        if isinstance(callee, ast.Name):
            return self.table.module_function(module, callee.id)
        if (
            isinstance(callee, ast.Attribute)
            and isinstance(callee.value, ast.Name)
            and callee.value.id == "self"
            and cls is not None
        ):
            return self.table.method(module, cls, callee.attr)
        return None

    # -- direct facts ---------------------------------------------------

    def _scan(self, key: FuncKey, func: FuncNode) -> None:
        summary = FunctionSummary()
        params = set(param_names(func.node))
        calls: list[_CallSite] = []
        returned_calls = {
            id(stmt.value)
            for stmt in ast.walk(func.node)
            if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Call)
        }
        for node in ast.walk(func.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    name = lock_name(func.module, key.cls, expr)
                    if name is not None:
                        summary.locks.add(name)
                    # ``with param:`` runs ``__exit__`` — a close.
                    if isinstance(expr, ast.Name) and expr.id in params:
                        summary.closes.add(expr.id)
            elif isinstance(node, ast.Call):
                callee = node.func
                if (
                    isinstance(callee, ast.Attribute)
                    and isinstance(callee.value, ast.Name)
                    and callee.value.id in params
                ):
                    if callee.attr in _CLOSE_ATTRS:
                        summary.closes.add(callee.value.id)
                    elif callee.attr in _SETTLE_ATTRS:
                        summary.settles.add(callee.value.id)
                target = self.resolve_call(func.module, key.cls, node)
                if target is not None and target != key:
                    calls.append(
                        _CallSite(
                            callee=target,
                            arg_map=self._map_args(target, node),
                            returned=id(node) in returned_calls,
                        )
                    )
                if id(node) in returned_calls:
                    cls_name = self._resource_class(func.module, node)
                    if cls_name is not None:
                        summary.returns_resource = cls_name
        self._summaries[key] = summary
        self._calls[key] = calls

    def _map_args(self, target: FuncKey, call: ast.Call) -> dict[str, str]:
        func = self.table.functions[target]
        names = param_names(func.node)
        if target.cls is not None and names and names[0] == "self":
            names = names[1:]
        mapping: dict[str, str] = {}
        for position, arg in enumerate(call.args):
            if position < len(names) and isinstance(arg, ast.Name):
                mapping[names[position]] = arg.id
        for keyword in call.keywords:
            if keyword.arg is not None and isinstance(keyword.value, ast.Name):
                mapping[keyword.arg] = keyword.value.id
        return mapping

    def _resource_class(self, module: ModuleInfo, call: ast.Call) -> str | None:
        dotted = module.qualified(call.func) or module.dotted(call.func) or ""
        tail = dotted.rpartition(".")[2]
        return tail if tail in self.resource_classes else None

    # -- fixpoint -------------------------------------------------------

    def _propagate(self) -> None:
        changed = True
        while changed:
            changed = False
            for key, calls in self._calls.items():
                summary = self._summaries[key]
                params = set(param_names(self.table.functions[key].node))
                for site in calls:
                    callee = self._summaries.get(site.callee)
                    if callee is None:
                        continue
                    if not callee.locks <= summary.locks:
                        summary.locks |= callee.locks
                        changed = True
                    for theirs, ours in site.arg_map.items():
                        if ours not in params:
                            continue
                        if theirs in callee.closes and ours not in summary.closes:
                            summary.closes.add(ours)
                            changed = True
                        if theirs in callee.settles and ours not in summary.settles:
                            summary.settles.add(ours)
                            changed = True
                    if (
                        site.returned
                        and callee.returns_resource
                        and summary.returns_resource is None
                    ):
                        summary.returns_resource = callee.returns_resource
                        changed = True


def _local_self_aliases(func: ast.AST) -> dict[str, list[str]]:
    """``name -> [method, ...]`` for ``name = self._x`` assignments in
    ``func``'s body (all branches collected)."""
    aliases: dict[str, list[str]] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            aliases.setdefault(target.id, []).append(value.attr)
    return aliases


def _local_name_aliases(func: ast.AST) -> dict[str, list[str]]:
    """``name -> [other, ...]`` for ``name = other`` bare-name
    assignments in ``func``'s body (all branches collected) — the
    ``runner = _worker_function`` pattern that picks a pool worker
    conditionally before submitting it."""
    aliases: dict[str, list[str]] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if isinstance(target, ast.Name) and isinstance(node.value, ast.Name):
            aliases.setdefault(target.id, []).append(node.value.id)
    return aliases


def _local_callable_values(func: ast.AST) -> dict[str, list[ast.expr]]:
    """``name -> [value, ...]`` for ``name = partial(fn, ...)`` /
    ``name = lambda: ...`` assignments in ``func``'s body — wrapped
    workers bound to a local before submission."""
    values: dict[str, list[ast.expr]] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if isinstance(target, ast.Name) and isinstance(
            node.value, (ast.Call, ast.Lambda)
        ):
            values.setdefault(target.id, []).append(node.value)
    return values


def _is_lock_guard(node: ast.With | ast.AsyncWith) -> bool:
    for item in node.items:
        try:
            text = ast.unparse(item.context_expr)
        except Exception:  # pragma: no cover - unparse is total on valid ASTs
            continue
        if "lock" in text.lower():
            return True
    return False


class _WriteScanner(ast.NodeVisitor):
    """Unprotected shared-state writes inside one function subtree."""

    def __init__(self) -> None:
        self._lock_depth = 0
        self.global_names: set[str] = set()
        #: ``(target_node, description)`` pairs outside any lock.
        self.unprotected: list[tuple[ast.AST, str]] = []

    def scan(self, func: ast.AST) -> list[tuple[ast.AST, str]]:
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                self.global_names.update(node.names)
        for statement in getattr(func, "body", []):
            self.visit(statement)
        return self.unprotected

    # -- lock tracking -------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        locked = _is_lock_guard(node)
        if locked:
            self._lock_depth += 1
        for statement in node.body:
            self.visit(statement)
        if locked:
            self._lock_depth -= 1

    # -- write sites ---------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def _check_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element)
            return
        if self._lock_depth > 0:
            return
        if isinstance(target, ast.Attribute):
            root = target
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id == "self":
                try:
                    text = ast.unparse(target)
                except Exception:  # pragma: no cover
                    text = "self.<attr>"
                self.unprotected.append((target, f"attribute write `{text}`"))
        elif isinstance(target, ast.Name) and target.id in self.global_names:
            self.unprotected.append(
                (target, f"module-global write `{target.id}`")
            )


@rule
class UnlockedSharedWrite(Rule):
    code = "RACE001"
    name = "unlocked shared write"
    summary = (
        "a function reachable from a thread-pool entry point writes "
        "self.* or a module global outside a `with <lock>` block"
    )
    rationale = (
        "Worker callables handed to parallel_map/parallel_map_stream/"
        "wave_map run concurrently; an unlocked shared-attribute or "
        "global write from such code is a data race (the last_report "
        "and SearchStats corruption bugs were exactly this class)."
    )
    example = "def _worker(self, job): self.cache = build()  # needs a lock"

    def check(self, project: Project) -> Iterable[Finding]:
        table = _FunctionTable(project)
        entries = self._entry_points(project, table)
        reachable = self._reach(table, entries)
        seen: set[tuple[str, int, int]] = set()
        for key, entry_label in sorted(
            reachable.items(), key=lambda item: item[0].label()
        ):
            func = table.functions[key]
            for target, description in _WriteScanner().scan(func.node):
                line = getattr(target, "lineno", 1)
                col = getattr(target, "col_offset", 0)
                site = (func.module.path, line, col)
                if site in seen:
                    continue
                seen.add(site)
                yield Finding(
                    code=self.code,
                    path=func.module.path,
                    line=line,
                    col=col,
                    message=(
                        f"{description} in {key.label()} is reachable "
                        f"from thread-pool entry point {entry_label} but "
                        f"is outside any `with <lock>` block"
                    ),
                    snippet=func.module.line(line),
                )

    # -- entry-point discovery ----------------------------------------

    def _entry_points(
        self, project: Project, table: _FunctionTable
    ) -> dict[_FuncKey, str]:
        """``{function: human label of the submitting call site}``."""
        entries: dict[_FuncKey, str] = {}
        for module in project.modules:
            for cls, func, call in _calls_with_context(module.tree):
                worker = self._worker_argument(module, call)
                if worker is None:
                    continue
                label = f"{module.name}:{call.lineno}"
                for key in self._resolve_callable(
                    table, module, cls, func, worker
                ):
                    entries.setdefault(key, label)
        return entries

    def _worker_argument(
        self, module: ModuleInfo, call: ast.Call
    ) -> ast.expr | None:
        """The worker-callable argument when ``call`` submits to a pool."""
        if not call.args:
            return None
        func = call.func
        dotted = module.dotted(func) or ""
        tail = dotted.rpartition(".")[2]
        if tail in _POOL_FUNCS or tail in _HOOK_NAMES:
            return call.args[0]
        if isinstance(func, ast.Attribute) and func.attr in _SUBMIT_ATTRS:
            receiver = module.dotted(func.value) or ""
            if any(part in receiver.lower() for part in _POOL_RECEIVERS):
                return call.args[0]
        return None

    def _resolve_callable(
        self,
        table: _FunctionTable,
        module: ModuleInfo,
        cls: ast.ClassDef | None,
        func: ast.AST | None,
        node: ast.expr,
        seen: set[int] | None = None,
    ) -> list[_FuncKey]:
        """Function(s) a worker-callable expression may denote."""
        seen = set() if seen is None else seen
        if id(node) in seen:
            return []
        seen.add(id(node))
        keys: list[_FuncKey] = []
        if isinstance(node, ast.Call):
            # functools.partial(fn, ...): the eventual callable is fn.
            dotted = module.qualified(node.func) or module.dotted(node.func) or ""
            if dotted.rpartition(".")[2] == "partial" and node.args:
                return self._resolve_callable(
                    table, module, cls, func, node.args[0], seen
                )
            return keys
        if isinstance(node, ast.Lambda):
            # lambda shard: _worker(shard, cfg) — every call made by the
            # lambda body runs on the pool.
            for inner in ast.walk(node.body):
                if isinstance(inner, ast.Call):
                    keys.extend(
                        self._resolve_callable(
                            table, module, cls, func, inner.func, seen
                        )
                    )
            return keys
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and cls is not None
            ):
                key = table.method(module, cls.name, node.attr)
                if key is not None:
                    keys.append(key)
            return keys
        if isinstance(node, ast.Name):
            if cls is not None and func is not None:
                for attr in _local_self_aliases(func).get(node.id, ()):
                    key = table.method(module, cls.name, attr)
                    if key is not None:
                        keys.append(key)
            if func is not None:
                for other in _local_name_aliases(func).get(node.id, ()):
                    key = table.module_function(module, other)
                    if key is not None:
                        keys.append(key)
                for value in _local_callable_values(func).get(node.id, ()):
                    keys.extend(
                        self._resolve_callable(
                            table, module, cls, func, value, seen
                        )
                    )
            key = table.module_function(module, node.id)
            if key is not None:
                keys.append(key)
        return keys

    # -- reachability --------------------------------------------------

    def _reach(
        self, table: _FunctionTable, entries: dict[_FuncKey, str]
    ) -> dict[_FuncKey, str]:
        reachable: dict[_FuncKey, str] = {}
        stack = list(entries.items())
        while stack:
            key, entry = stack.pop()
            if key in reachable:
                continue
            reachable[key] = entry
            func = table.functions.get(key)
            if func is None:
                continue
            for callee in self._edges(table, func):
                if callee not in reachable:
                    stack.append((callee, entry))
        return reachable

    def _edges(self, table: _FunctionTable, func: _FuncNode) -> list[_FuncKey]:
        module = func.module
        cls = func.key.cls
        aliases = _local_self_aliases(func.node)
        edges: list[_FuncKey] = []
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Name):
                if cls is not None:
                    for attr in aliases.get(callee.id, ()):
                        key = table.method(module, cls, attr)
                        if key is not None:
                            edges.append(key)
                key = table.module_function(module, callee.id)
                if key is not None:
                    edges.append(key)
            elif (
                isinstance(callee, ast.Attribute)
                and isinstance(callee.value, ast.Name)
                and callee.value.id == "self"
                and cls is not None
            ):
                key = table.method(module, cls, callee.attr)
                if key is not None:
                    edges.append(key)
        return edges


def _calls_with_context(tree: ast.Module):
    """Yield ``(enclosing_class, enclosing_function, call)`` triples."""

    results: list[tuple[ast.ClassDef | None, ast.AST | None, ast.Call]] = []

    class _Walker(ast.NodeVisitor):
        def __init__(self) -> None:
            self.cls: ast.ClassDef | None = None
            self.func: ast.AST | None = None

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            previous, self.cls = self.cls, node
            self.generic_visit(node)
            self.cls = previous

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            previous, self.func = self.func, node
            self.generic_visit(node)
            self.func = previous

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

        def visit_Call(self, node: ast.Call) -> None:
            results.append((self.cls, self.func, node))
            self.generic_visit(node)

    _Walker().visit(tree)
    return results
