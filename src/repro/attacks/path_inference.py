"""Shortest-path inference: the second recovery technique the paper names.

Where HMM map matching (``repro.attacks.hmm``) decodes jointly over the
whole sequence, *path inference* reconstructs the route greedily: snap
every sample to its nearest road node and connect consecutive snapped
nodes with network shortest paths. It is cheaper and — on sparsely
sampled or lightly perturbed data — often nearly as effective, which is
exactly why publishing point-deleted trajectories (SC) remains unsafe.

The output is interchangeable with the HMM attack's
(:class:`repro.attacks.hmm.MatchResult`), so the same scoring applies.
"""

from __future__ import annotations

from repro.attacks.hmm import MatchResult
from repro.attacks.recovery import RecoveryOutput
from repro.datagen.road_network import RoadNetwork
from repro.geo.geometry import point_distance
from repro.trajectory.model import Trajectory, TrajectoryDataset


class PathInferenceAttack:
    """Greedy snap-and-route trajectory recovery."""

    def __init__(
        self,
        network: RoadNetwork,
        snap_radius: float = 300.0,
        max_leg_factor: float = 6.0,
        max_points_per_trajectory: int | None = None,
    ) -> None:
        """``snap_radius`` bounds how far a sample may sit from the road
        it is snapped to; samples beyond it are skipped. ``max_leg_factor``
        rejects inferred legs whose network length exceeds that multiple
        of the straight-line distance (an implausible detour — treated
        as a gap, as real inference systems do)."""
        if snap_radius <= 0:
            raise ValueError("snap radius must be positive")
        if max_leg_factor < 1.0:
            raise ValueError("max_leg_factor must be at least 1")
        self.network = network
        self.snap_radius = snap_radius
        self.max_leg_factor = max_leg_factor
        self.max_points_per_trajectory = max_points_per_trajectory

    def infer(self, trajectory: Trajectory) -> MatchResult:
        """Reconstruct one trajectory's route."""
        points = trajectory.points
        if self.max_points_per_trajectory is not None:
            points = points[: self.max_points_per_trajectory]

        snapped: list[int | None] = []
        for point in points:
            node = self.network.nearest_node(point.coord)
            gap = point_distance(point.coord, self.network.node_coord(node))
            snapped.append(node if gap <= self.snap_radius else None)

        edge_keys: list[tuple[int, int]] = []
        previous: int | None = None
        for node in snapped:
            if node is None:
                previous = None  # gap: restart route stitching
                continue
            if previous is not None and previous != node:
                straight = point_distance(
                    self.network.node_coord(previous),
                    self.network.node_coord(node),
                )
                try:
                    path = self.network.shortest_path(previous, node)
                except ValueError:
                    previous = node
                    continue
                length = sum(
                    point_distance(
                        self.network.node_coord(path[i]),
                        self.network.node_coord(path[i + 1]),
                    )
                    for i in range(len(path) - 1)
                )
                if straight > 0 and length / straight <= self.max_leg_factor:
                    for i in range(len(path) - 1):
                        u, v = path[i], path[i + 1]
                        key = (u, v) if u < v else (v, u)
                        if not edge_keys or edge_keys[-1] != key:
                            edge_keys.append(key)
            previous = node

        # Path inference has no per-sample candidates; report the
        # snapped coverage through the candidates slot as None-padding
        # so matched_fraction still reflects gap frequency.
        return MatchResult(
            candidates=[None if n is None else _SNAPPED for n in snapped],
            edge_keys=edge_keys,
        )

    def run(self, dataset: TrajectoryDataset) -> RecoveryOutput:
        """Infer routes for a whole dataset (positional alignment)."""
        output = RecoveryOutput()
        for trajectory in dataset:
            output.results.append(self.infer(trajectory))
        return output


class _Snapped:
    """Sentinel standing in for a candidate in MatchResult slots."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<snapped>"


_SNAPPED = _Snapped()
