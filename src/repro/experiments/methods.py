"""Method specs for every method Table II compares.

Since the :mod:`repro.api` registry became the one front door, this
module is a thin, *ordered* view over it: ``table2_specs`` maps the
paper's method labels (Table II column order) to declarative
:class:`~repro.api.spec.MethodSpec` values derived from an
:class:`ExperimentConfig`, and ``our_model_specs`` covers just the
frequency-based models for the ε sweep of Figure 4.

``build_methods`` / ``build_our_models`` are kept as the historical
callable-returning views; each callable is ``run(spec, ds).dataset``,
so both surfaces execute exactly the same registry-built methods.

``SYNTHETIC_METHODS`` marks the generative models whose outputs carry
no record-level truthfulness (the paper skips temporal-linkage and
recovery metrics for them); it is derived from the registry's
``synthetic`` flags.
"""

from __future__ import annotations

from typing import Callable

from repro.api import MethodSpec, method_info, run
from repro.experiments.config import ExperimentConfig
from repro.trajectory.model import TrajectoryDataset

Anonymizer = Callable[[TrajectoryDataset], TrajectoryDataset]

#: Table II labels, in the paper's column order, with the registry
#: kind each resolves to (RSC expands to one column per radius).
TABLE2_ORDER = (
    ("SC", "sc"),
    ("RSC", "rsc"),
    ("W4M", "w4m"),
    ("GLOVE", "glove"),
    ("KLT", "klt"),
    ("DPT", "dpt"),
    ("AdaTrace", "adatrace"),
    ("PureG", "pureg"),
    ("PureL", "purel"),
    ("GL", "gl"),
)

#: Methods whose output is synthetic (no record-level pairing),
#: straight from the registry metadata.
SYNTHETIC_METHODS = frozenset(
    label for label, kind in TABLE2_ORDER if method_info(kind).synthetic
)


def table2_specs(config: ExperimentConfig) -> dict[str, MethodSpec]:
    """All Table II methods as specs, in the paper's column order."""
    m = config.signature_size
    specs: dict[str, MethodSpec] = {}

    specs["SC"] = MethodSpec("sc", {"signature_size": m})
    for radius in config.rsc_radii:
        specs[f"RSC-{radius / 1000:g}"] = MethodSpec(
            "rsc", {"signature_size": m, "radius": radius}
        )

    specs["W4M"] = MethodSpec("w4m", {"k": config.k_anonymity})
    specs["GLOVE"] = MethodSpec("glove", {"k": config.k_anonymity})
    specs["KLT"] = MethodSpec(
        "klt",
        {
            "k": config.k_anonymity,
            "l_diversity": config.l_diversity,
            "t_closeness": config.t_closeness,
        },
    )

    generative = {"epsilon": config.epsilon, "seed": config.seed}
    specs["DPT"] = MethodSpec("dpt", generative)
    specs["AdaTrace"] = MethodSpec("adatrace", generative)

    specs["PureG"] = MethodSpec(
        "pureg", config.model_params(config.epsilon / 2.0)
    )
    specs["PureL"] = MethodSpec(
        "purel", config.model_params(config.epsilon / 2.0)
    )
    specs["GL"] = MethodSpec("gl", config.model_params())
    return specs


def our_model_specs(config: ExperimentConfig) -> dict[str, MethodSpec]:
    """Just the frequency-based models (for the ε sweep of Figure 4)."""
    return {
        "PureG": MethodSpec("pureg", config.model_params()),
        "PureL": MethodSpec("purel", config.model_params()),
        "GL": MethodSpec("gl", config.model_params()),
    }


def _as_callable(spec: MethodSpec) -> Anonymizer:
    return lambda dataset: run(spec, dataset).dataset


def build_methods(config: ExperimentConfig) -> dict[str, Anonymizer]:
    """All Table II methods as callables, in the paper's column order."""
    return {
        label: _as_callable(spec)
        for label, spec in table2_specs(config).items()
    }


def build_our_models(config: ExperimentConfig) -> dict[str, Anonymizer]:
    """The frequency-based models as callables (Figure 4 view)."""
    return {
        label: _as_callable(spec)
        for label, spec in our_model_specs(config).items()
    }
