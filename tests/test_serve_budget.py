"""Tests for the per-tenant epsilon budget accounts (`repro.serve.budget`).

The subsystem's contract, in rough order of importance:

- N concurrent requests against one account can never jointly commit
  more than the declared budget (the property the daemon exists to
  enforce);
- account files replay to the same state they recorded, and a
  tampered file (edited charge, edited ledger draw) refuses to load;
- a reservation orphaned by a crash is settled conservatively
  (charged in full), never refunded.
"""

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accounting import CompositionLedger
from repro.serve.budget import (
    ACCOUNT_SUFFIX,
    AccountError,
    BudgetExceededError,
    BudgetStore,
    TenantAccount,
    UnknownTenantError,
)


@pytest.fixture
def store(tmp_path):
    return BudgetStore(tmp_path / "budgets")


class TestDeclare:
    def test_declare_creates_account_file(self, store):
        account = store.declare("acme", 4.0)
        assert account.budget == 4.0
        assert account.path.name == "acme" + ACCOUNT_SUFFIX
        first = json.loads(account.path.read_text().splitlines()[0])
        assert first == {"kind": "declare", "tenant": "acme", "budget": 4.0}

    def test_redeclare_same_budget_is_idempotent(self, store):
        first = store.declare("acme", 4.0)
        assert store.declare("acme", 4.0) is first

    def test_redeclare_different_budget_refused(self, store):
        store.declare("acme", 4.0)
        with pytest.raises(AccountError, match="refusing to re-declare"):
            store.declare("acme", 8.0)

    @pytest.mark.parametrize("budget", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_budget_refused(self, store, budget):
        with pytest.raises(AccountError):
            store.declare("acme", budget)

    @pytest.mark.parametrize(
        "tenant", ["", ".", "..", "a/b", ".hidden", "x/../y"]
    )
    def test_non_segment_tenant_names_refused(self, store, tenant):
        with pytest.raises(AccountError, match="plain path segment"):
            store.declare(tenant, 1.0)

    def test_unknown_tenant(self, store):
        with pytest.raises(UnknownTenantError):
            store.account("ghost")


class TestReserveCommitRelease:
    def test_lifecycle_arithmetic(self, store):
        store.declare("acme", 4.0)
        store.reserve("acme", "job-1", 1.5)
        status = store.account("acme").status()
        assert status["reserved"] == 1.5
        assert status["remaining"] == pytest.approx(2.5)
        charged = store.commit("acme", "job-1", None)
        assert charged == 1.5
        status = store.account("acme").status()
        assert status["spent"] == 1.5
        assert status["reserved"] == 0
        assert status["jobs"]["committed"] == ["job-1"]

    def test_over_budget_reservation_refused_structured(self, store):
        store.declare("tiny", 1.0)
        store.reserve("tiny", "job-1", 0.8)
        with pytest.raises(BudgetExceededError) as excinfo:
            store.reserve("tiny", "job-2", 0.5)
        body = excinfo.value.to_dict()
        assert body["error"] == "budget-exhausted"
        assert body["tenant"] == "tiny"
        assert body["requested"] == 0.5
        assert body["remaining"] == pytest.approx(0.2)
        assert body["budget"] == 1.0

    def test_release_returns_the_reservation(self, store):
        store.declare("acme", 2.0)
        store.reserve("acme", "job-1", 2.0)
        store.release("acme", "job-1", reason="engine exploded")
        account = store.account("acme")
        assert account.remaining == pytest.approx(2.0)
        assert account.released == {"job-1": "engine exploded"}

    def test_released_job_id_may_retry(self, store):
        store.declare("acme", 2.0)
        store.reserve("acme", "job-1", 2.0)
        store.release("acme", "job-1")
        store.reserve("acme", "job-1", 2.0)  # the retried request
        assert store.commit("acme", "job-1", None) == 2.0

    def test_duplicate_reservation_refused(self, store):
        store.declare("acme", 4.0)
        store.reserve("acme", "job-1", 1.0)
        with pytest.raises(AccountError, match="already holds"):
            store.reserve("acme", "job-1", 1.0)

    def test_commit_without_reservation_refused(self, store):
        store.declare("acme", 4.0)
        with pytest.raises(AccountError, match="without a live reservation"):
            store.commit("acme", "job-1", None)

    def test_commit_charges_the_ledger_not_the_reservation(self, store):
        store.declare("acme", 4.0)
        store.reserve("acme", "job-1", 2.0)
        ledger = CompositionLedger()
        ledger.record("global", 0.5)
        ledger.record("local", 0.75)
        assert store.commit("acme", "job-1", ledger) == pytest.approx(1.25)
        assert store.account("acme").remaining == pytest.approx(2.75)

    def test_ledger_above_reservation_refused(self, store):
        store.declare("acme", 4.0)
        store.reserve("acme", "job-1", 1.0)
        ledger = CompositionLedger()
        ledger.record("global", 1.5)
        with pytest.raises(AccountError, match="overspend"):
            store.commit("acme", "job-1", ledger)

    def test_zero_draw_ledger_settles_as_release(self, store):
        store.declare("acme", 4.0)
        store.reserve("acme", "job-1", 1.0)
        assert store.commit("acme", "job-1", CompositionLedger()) == 0.0
        account = store.account("acme")
        assert account.remaining == pytest.approx(4.0)
        assert account.released == {"job-1": "no draws"}


class TestPersistence:
    """The account file replays to the state it recorded — including
    each commit's full CompositionLedger JSON."""

    def _reload(self, store, tenant):
        """A fresh store over the same root (simulated restart)."""
        return BudgetStore(store.root).account(tenant)

    def test_round_trip_with_ledger(self, store):
        store.declare("acme", 4.0)
        store.reserve("acme", "job-1", 2.0)
        ledger = CompositionLedger()
        ledger.record("global", 0.5)
        ledger.record_parallel("chunks", "local", 0.75, scope="chunk:0")
        ledger.record_parallel("chunks", "local", 0.5, scope="chunk:1")
        store.commit("acme", "job-1", ledger)
        store.reserve("acme", "job-2", 1.0)
        store.release("acme", "job-2", reason="boom")

        replayed = self._reload(store, "acme")
        assert replayed.budget == 4.0
        assert replayed.committed == {
            "job-1": pytest.approx(ledger.epsilon_total)
        }
        assert replayed.released == {"job-2": "boom"}
        assert replayed.pending == {}
        # The embedded ledger round-trips draw for draw.
        commit = [
            json.loads(line)
            for line in replayed.path.read_text().splitlines()
            if json.loads(line)["kind"] == "commit"
        ][0]
        assert CompositionLedger.from_dict(commit["ledger"]).to_dict() == (
            ledger.to_dict()
        )

    def test_pending_reservation_survives_reload(self, store):
        store.declare("acme", 4.0)
        store.reserve("acme", "job-1", 1.5)
        replayed = self._reload(store, "acme")
        assert replayed.pending == {"job-1": 1.5}
        assert replayed.remaining == pytest.approx(2.5)

    def test_tampered_charge_rejected(self, store):
        store.declare("acme", 4.0)
        store.reserve("acme", "job-1", 2.0)
        ledger = CompositionLedger()
        ledger.record("global", 1.0)
        store.commit("acme", "job-1", ledger)
        path = store.account("acme").path
        lines = path.read_text().splitlines()
        entry = json.loads(lines[-1])
        entry["epsilon"] = 0.25  # pay less than the ledger says
        path.write_text("\n".join(lines[:-1] + [json.dumps(entry)]) + "\n")
        with pytest.raises(AccountError, match="composes to"):
            self._reload(store, "acme")

    def test_tampered_ledger_draw_rejected(self, store):
        store.declare("acme", 4.0)
        store.reserve("acme", "job-1", 2.0)
        ledger = CompositionLedger()
        ledger.record("global", 1.0)
        store.commit("acme", "job-1", ledger)
        path = store.account("acme").path
        lines = path.read_text().splitlines()
        entry = json.loads(lines[-1])
        entry["ledger"]["draws"][0]["epsilon"] = 0.25  # forge the draw
        path.write_text("\n".join(lines[:-1] + [json.dumps(entry)]) + "\n")
        with pytest.raises(AccountError, match="does not round-trip"):
            self._reload(store, "acme")

    def test_oversubscribed_history_rejected(self, store):
        store.declare("acme", 1.0)
        path = store.account("acme").path
        with path.open("a") as handle:
            handle.write(
                json.dumps({"kind": "reserve", "job": "j1", "epsilon": 0.9})
                + "\n"
            )
            handle.write(
                json.dumps({"kind": "reserve", "job": "j2", "epsilon": 0.9})
                + "\n"
            )
        with pytest.raises(AccountError, match="oversubscribes"):
            self._reload(store, "acme")

    @pytest.mark.parametrize(
        "garbage",
        [
            "not json",
            json.dumps({"no": "kind"}),
            json.dumps({"kind": "frobnicate", "job": "j1"}),
            json.dumps({"kind": "commit", "job": "never-reserved",
                        "epsilon": 0.1, "ledger": None}),
        ],
    )
    def test_malformed_lines_rejected(self, store, garbage):
        store.declare("acme", 1.0)
        path = store.account("acme").path
        with path.open("a") as handle:
            handle.write(garbage + "\n")
        with pytest.raises(AccountError):
            self._reload(store, "acme")

    def test_wrong_first_line_rejected(self, tmp_path):
        path = tmp_path / ("acme" + ACCOUNT_SUFFIX)
        path.write_text(
            json.dumps({"kind": "reserve", "job": "j1", "epsilon": 0.5}) + "\n"
        )
        with pytest.raises(AccountError, match="first entry must declare"):
            TenantAccount.load("acme", path)


class TestCrashRecovery:
    def test_orphaned_reservation_charged_in_full(self, store):
        store.declare("acme", 4.0)
        store.reserve("acme", "job-1", 1.5)
        # The daemon dies here: reservation present, commit absent.
        fresh = BudgetStore(store.root)
        assert fresh.recover() == {"acme": ["job-1"]}
        account = fresh.account("acme")
        assert account.committed == {"job-1": 1.5}
        assert account.pending == {}
        # And the recovery itself is durable.
        again = BudgetStore(store.root)
        assert again.recover() == {}
        assert again.account("acme").committed == {"job-1": 1.5}

    def test_recovery_commit_carries_no_ledger(self, store):
        store.declare("acme", 4.0)
        store.reserve("acme", "job-1", 1.5)
        fresh = BudgetStore(store.root)
        fresh.recover()
        last = json.loads(
            fresh.account("acme").path.read_text().splitlines()[-1]
        )
        assert last["kind"] == "commit"
        assert last["ledger"] is None
        assert last["epsilon"] == 1.5


class TestNoOverspend:
    """The headline invariant: concurrency cannot overspend a budget."""

    def test_parallel_requests_never_commit_past_the_budget(self, store):
        budget, eps = 4.0, 1.0
        store.declare("acme", budget)
        n = 16
        barrier = threading.Barrier(n)
        admitted, refused = [], []
        lock = threading.Lock()

        def request(i):
            job = f"job-{i}"
            barrier.wait()
            try:
                store.reserve("acme", job, eps)
            except BudgetExceededError:
                with lock:
                    refused.append(job)
                return
            store.commit("acme", job, None)
            with lock:
                admitted.append(job)

        threads = [
            threading.Thread(target=request, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == int(budget / eps)
        assert len(refused) == n - len(admitted)
        account = store.account("acme")
        assert account.spent <= budget + 1e-9
        # The durable file replays to the same verdict.
        replayed = BudgetStore(store.root).account("acme")
        assert replayed.spent == pytest.approx(account.spent)

    @settings(max_examples=30, deadline=None)
    @given(
        budget=st.floats(min_value=0.5, max_value=8.0),
        requests=st.lists(
            st.floats(min_value=0.01, max_value=3.0), min_size=1, max_size=24
        ),
    )
    def test_any_request_sequence_respects_the_budget(
        self, tmp_path_factory, budget, requests
    ):
        root = tmp_path_factory.mktemp("budgets")
        store = BudgetStore(root)
        store.declare("acme", budget)
        for i, eps in enumerate(requests):
            try:
                store.reserve("acme", f"job-{i}", eps)
            except BudgetExceededError:
                continue
            store.commit("acme", f"job-{i}", None)
        account = store.account("acme")
        assert account.spent <= budget + 1e-9
        replayed = BudgetStore(root).account("acme")
        assert replayed.spent == pytest.approx(account.spent)
        assert replayed.committed == account.committed
