#!/usr/bin/env python
"""Attack lab: why deleting signatures is not enough.

Reproduces the paper's motivating experiment (Section I): signature
closure (SC) — just dropping the identifying points — looks private
under the linking attack, but an HMM map-matching adversary recovers
the original routes, while the frequency-based GL model resists both.

Run with::

    python examples/attack_lab.py
"""

from repro import FleetConfig, GL, generate_fleet
from repro.attacks.linkage import LinkageAttack
from repro.attacks.recovery import RecoveryAttack
from repro.baselines.signature_closure import SignatureClosure
from repro.metrics.recovery import score_recovery


def audit(name, original, anonymized, fleet):
    attack = LinkageAttack(cell_size=250.0)
    la = attack.linking_accuracy(original, anonymized, "spatial")
    sample = 10
    recovery = RecoveryAttack(
        fleet.network,
        sigma=40.0,
        beta=60.0,
        candidate_radius=200.0,
    ).run(anonymized.subset(sample))
    rec = score_recovery(
        fleet.network, original.subset(sample), fleet.routes, recovery
    )
    print(f"{name:<12s} LA_s={la:5.3f}   route-F={rec.f_score:5.3f} "
          f"RMF={rec.rmf:5.3f}  point-acc={rec.accuracy:5.3f}")
    return la, rec


def main() -> None:
    fleet = generate_fleet(
        FleetConfig(n_objects=40, points_per_trajectory=150, rows=16, cols=16, seed=9)
    )
    print("method       re-identification   recovery attack")
    print("-" * 64)

    audit("raw", fleet.dataset, fleet.dataset, fleet)

    sc = SignatureClosure(signature_size=5).anonymize(fleet.dataset)
    audit("SC", fleet.dataset, sc, fleet)

    gl = GL(epsilon=1.0, signature_size=5, seed=3).anonymize(fleet.dataset)
    audit("GL (ours)", fleet.dataset, gl, fleet)

    print("\nReading the table:")
    print(" * raw data: trivially linkable and recoverable — the threat.")
    print(" * SC: linking drops, but map matching still reconstructs the")
    print("   routes (the paper's recovery-attack finding).")
    print(" * GL: frequency randomization keeps linking low AND makes the")
    print("   recovered routes diverge (higher RMF = more hallucinated")
    print("   detours an attacker cannot tell apart from real ones).")


if __name__ == "__main__":
    main()
