"""Named dataset sources with cached, versioned preprocessed artifacts.

An *artifact* is the on-disk unit the rest of the stack consumes: a
directory holding

* ``data.csv`` — the preprocessed trips in the repo's native planar
  ``object_id,t,x,y`` format (so every existing reader works on it);
* ``meta.json`` — provenance: the source path and format, the
  projection origin, the full :class:`PreprocessConfig`, and the
  :class:`IngestStats` of the ingest run.

Artifacts live under ``<root>/<name>/<version>/`` where ``version`` is
the preprocessing config's digest — re-ingesting the same source with
the same knobs is a cache hit, changing any knob creates a sibling
version. ``<root>/<name>/latest`` records the most recent version.
The root defaults to ``$REPRO_DATA_ROOT`` or ``~/.cache/repro/datasets``.
The artifact schema is specified in ``docs/data.md``.

Artifacts also travel between machines: :meth:`DatasetRegistry.export_
artifact` packs one into a ``.tar.gz`` whose ``meta.json`` carries the
sha256 of ``data.csv``, and :meth:`DatasetRegistry.import_artifact`
installs such a tarball into a (different) registry root after
verifying the checksum — so a preprocessed dataset ingested on one box
can be shipped to a fleet without re-running preprocessing.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import os
import shutil
import tarfile
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.data.preprocess import IngestStats, PreprocessConfig, preprocess_stream
from repro.data.stream import detect_format, scan_origin, stream_trajectories
from repro.trajectory.io import (
    CSV_HEADER,
    read_tdrive_directory,
    stream_csv,
    write_csv_rows,
)
from repro.trajectory.model import Trajectory, TrajectoryDataset

ARTIFACT_SCHEMA_VERSION = 1
DATA_FILENAME = "data.csv"
META_FILENAME = "meta.json"
LATEST_FILENAME = "latest"


def _write_latest(base: Path, version: str) -> None:
    """Atomically (re)write the ``latest`` pointer under ``base``.

    A plain ``write_text`` truncates before it writes, so a concurrent
    reader can observe an empty pointer and mis-resolve; staging the
    new content in a sibling temp file and ``os.replace``-ing it in
    means every reader sees either the old version or the new one,
    never a torn state. Matters to the serving daemon, where many
    tenants resolve against one registry root while ingests land.
    """
    handle = tempfile.NamedTemporaryFile(
        "w", dir=base, prefix=LATEST_FILENAME + ".", delete=False
    )
    try:
        with handle:
            handle.write(version)
        os.replace(handle.name, base / LATEST_FILENAME)
    except BaseException:
        os.unlink(handle.name)
        raise


def _sha256_of(path: Path) -> str:
    """Streaming sha256 of a file (constant memory)."""
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def default_root() -> Path:
    """The registry root: ``$REPRO_DATA_ROOT`` or ``~/.cache/repro/datasets``."""
    env = os.environ.get("REPRO_DATA_ROOT")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "datasets"


def is_artifact(path: str | Path) -> bool:
    """True when ``path`` is a preprocessed-artifact directory."""
    path = Path(path)
    return (
        path.is_dir()
        and (path / META_FILENAME).is_file()
        and (path / DATA_FILENAME).is_file()
    )


@dataclass(frozen=True, slots=True)
class IngestResult:
    """Outcome of one :meth:`DatasetRegistry.ingest` call."""

    name: str
    version: str
    path: Path
    stats: IngestStats
    #: False when the artifact already existed and was reused as-is.
    fresh: bool


class DatasetRegistry:
    """Disk-backed registry of ingested datasets."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_root()

    def artifact_path(self, name: str, config: PreprocessConfig) -> Path:
        return self.root / name / config.key()

    def versions(self, name: str) -> list[str]:
        """All ingested versions of ``name``, latest last."""
        base = self.root / name
        if not base.is_dir():
            return []
        dirs = [p for p in base.iterdir() if is_artifact(p)]
        dirs.sort(key=lambda p: p.stat().st_mtime)
        return [p.name for p in dirs]

    def names(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def ingest(
        self,
        name: str,
        source: str | Path,
        config: PreprocessConfig | None = None,
        format: str = "auto",
        origin: tuple[float, float] | None = None,
        force: bool = False,
    ) -> IngestResult:
        """Stream ``source`` through preprocessing into a cached artifact.

        The whole path is lazy — raw records are parsed, projected,
        cleaned, and written out one object at a time — so sources far
        larger than memory ingest fine. A matching artifact (same name
        and config digest) short-circuits unless ``force``.
        """
        config = config or PreprocessConfig()
        target = self.artifact_path(name, config)
        if is_artifact(target) and not force:
            meta = json.loads((target / META_FILENAME).read_text())
            # The version digest covers only the preprocessing knobs, so
            # a hit is genuine only if the provenance matches too — a
            # different source/format/origin must re-ingest, not reuse
            # another dataset's bytes. An omitted origin is derived
            # deterministically from the source, so it always matches.
            provenance_matches = (
                meta.get("source") == str(source)
                and (format == "auto" or meta.get("format") == format)
                and (
                    origin is None
                    or meta.get("origin") == list(origin)
                )
            )
            if provenance_matches:
                stats = IngestStats(**meta["stats"])
                return IngestResult(
                    name, config.key(), target, stats, fresh=False
                )

        if format == "auto":
            format = detect_format(source)
        if format == "tdrive" and origin is None:
            origin = scan_origin(source)

        stats = IngestStats()
        stream = preprocess_stream(
            stream_trajectories(source, format=format, origin=origin),
            config,
            stats,
        )
        staging = target.with_name(target.name + ".tmp")
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            with (staging / DATA_FILENAME).open("w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(CSV_HEADER)
                write_csv_rows(writer, stream)
            meta = {
                "schema": ARTIFACT_SCHEMA_VERSION,
                "name": name,
                "version": config.key(),
                "source": str(source),
                "format": format,
                "origin": list(origin) if origin is not None else None,
                "preprocess": config.to_dict(),
                "stats": stats.to_dict(),
                # Integrity of data.csv; verified on artifact import.
                "sha256": _sha256_of(staging / DATA_FILENAME),
            }
            (staging / META_FILENAME).write_text(json.dumps(meta, indent=2))
            if target.exists():
                shutil.rmtree(target)
            os.replace(staging, target)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        _write_latest(target.parent, config.key())
        return IngestResult(name, config.key(), target, stats, fresh=True)

    def resolve(self, name: str, version: str | None = None) -> Path:
        """Artifact directory for a registered name (latest by default).

        The recorded ``latest`` pointer file is authoritative: when it
        names an installed version, that version is returned even if
        directory mtimes disagree (mtimes are rewritten by backups,
        copies, and imports — the pointer records the actual last
        ingest/import).  A *dangling* pointer (its version was deleted)
        is repaired in place to the newest remaining version rather
        than silently shadowing every future resolution.
        """
        base = self.root / name
        if version is not None:
            target = base / version
            if not is_artifact(target):
                raise KeyError(f"no artifact {name}@{version} under {self.root}")
            return target
        marker = base / LATEST_FILENAME
        if marker.is_file():
            target = base / marker.read_text().strip()
            if is_artifact(target):
                return target
        versions = self.versions(name)
        if not versions:
            raise KeyError(f"no ingested dataset named {name!r} under {self.root}")
        # No pointer (pre-pointer registry) or a dangling one: repair
        # it so the registry is self-consistent from here on. Best
        # effort — a read-only registry root must still resolve.
        try:
            _write_latest(base, versions[-1])
        except OSError:
            pass
        return base / versions[-1]

    def meta(self, name: str, version: str | None = None) -> dict:
        return json.loads(
            (self.resolve(name, version) / META_FILENAME).read_text()
        )

    # -- export / import -------------------------------------------------------

    def export_artifact(
        self, name: str, dest: str | Path, version: str | None = None
    ) -> Path:
        """Pack an ingested artifact into a ``.tar.gz`` at ``dest``.

        The tarball holds ``<name>/<version>/{data.csv,meta.json}``
        with the sha256 of ``data.csv`` recorded in ``meta.json``
        (computed here for artifacts ingested before checksums
        existed), so :meth:`import_artifact` on another machine can
        verify the payload end to end. ``name`` accepts the usual
        ``name[@version]`` reference syntax.
        """
        bare, _, ref_version = name.partition("@")
        artifact = self.resolve(bare, version or ref_version or None)
        meta = json.loads((artifact / META_FILENAME).read_text())
        meta.setdefault("name", bare)
        meta.setdefault("version", artifact.name)
        meta.setdefault("sha256", _sha256_of(artifact / DATA_FILENAME))
        dest = Path(dest)
        dest.parent.mkdir(parents=True, exist_ok=True)
        prefix = f"{meta['name']}/{meta['version']}"
        meta_bytes = json.dumps(meta, indent=2).encode()
        with tarfile.open(dest, "w:gz") as tar:
            tar.add(artifact / DATA_FILENAME, arcname=f"{prefix}/{DATA_FILENAME}")
            info = tarfile.TarInfo(f"{prefix}/{META_FILENAME}")
            info.size = len(meta_bytes)
            tar.addfile(info, io.BytesIO(meta_bytes))
        return dest

    def import_artifact(
        self, archive: str | Path, force: bool = False
    ) -> IngestResult:
        """Install an exported artifact tarball into this registry.

        Extracts to a staging directory, verifies the sha256 recorded
        in the tarball's ``meta.json`` against the extracted
        ``data.csv``, then moves the artifact into place atomically
        and updates the ``latest`` marker. A matching artifact that is
        already installed short-circuits (cache hit) unless ``force``.
        """
        archive = Path(archive)
        with tempfile.TemporaryDirectory(prefix="repro-import-") as tmp:
            staging = Path(tmp)
            with tarfile.open(archive, "r:*") as tar:
                for member in tar.getmembers():
                    # Only plain relative files (and the directories
                    # that hold them) are legal artifact payload;
                    # symlinks, devices, or path escapes mean a
                    # malformed (or malicious) archive.
                    target = Path(member.name)
                    if target.is_absolute() or ".." in target.parts:
                        raise ValueError(
                            f"unsafe member path {member.name!r} in "
                            f"artifact archive {archive}"
                        )
                    if member.isdir():
                        continue
                    if not member.isfile():
                        raise ValueError(
                            f"unsupported member {member.name!r} in "
                            f"artifact archive {archive}"
                        )
                    tar.extract(member, staging, set_attrs=False)
            metas = sorted(staging.glob(f"*/*/{META_FILENAME}"))
            if len(metas) != 1:
                raise ValueError(
                    f"{archive} is not an artifact archive (expected "
                    f"exactly one <name>/<version>/{META_FILENAME})"
                )
            meta_path = metas[0]
            extracted = meta_path.parent
            meta = json.loads(meta_path.read_text())
            expected = meta.get("sha256")
            if not expected:
                raise ValueError(
                    f"{archive}: meta.json carries no sha256 checksum"
                )
            actual = _sha256_of(extracted / DATA_FILENAME)
            if actual != expected:
                raise ValueError(
                    f"{archive}: data.csv checksum mismatch (meta.json "
                    f"says {expected}, payload is {actual}) — refusing "
                    f"to install a corrupted artifact"
                )
            name = meta.get("name") or extracted.parent.name
            version = meta.get("version") or extracted.name
            # The install path comes from meta.json, which is attacker
            # data: both components must be single plain path segments
            # or a crafted archive could escape (and rmtree outside)
            # the registry root.
            for label, value in (("name", name), ("version", version)):
                if (
                    not value
                    or value in (".", "..")
                    or "/" in value
                    or os.sep in value
                    or (os.altsep and os.altsep in value)
                ):
                    raise ValueError(
                        f"{archive}: meta.json {label} {value!r} is not "
                        f"a plain path segment — refusing to install"
                    )
            target = self.root / name / version
            try:
                stats = IngestStats(**meta["stats"])
            except (KeyError, TypeError) as exc:
                raise ValueError(
                    f"{archive}: meta.json carries no valid ingest "
                    f"stats ({exc}) — not an exported artifact"
                ) from exc
            if is_artifact(target) and not force:
                # Cache hit installs nothing, but a missing or dangling
                # latest pointer left behind (e.g. by a deleted
                # version) is still repaired so the import leaves the
                # registry resolvable. Best effort, like resolve():
                # a read-only root must keep serving cache hits.
                marker = target.parent / LATEST_FILENAME
                if not (
                    marker.is_file()
                    and is_artifact(target.parent / marker.read_text().strip())
                ):
                    try:
                        _write_latest(target.parent, version)
                    except OSError:
                        pass
                return IngestResult(name, version, target, stats, fresh=False)
            target.parent.mkdir(parents=True, exist_ok=True)
            if target.exists():
                shutil.rmtree(target)
            # The move is the last step, so a half-written target never
            # looks like a valid artifact (shutil.move also handles a
            # temp dir on a different filesystem than the root).
            shutil.move(str(extracted), str(target))
        _write_latest(target.parent, version)
        return IngestResult(name, version, target, stats, fresh=True)

    def stream(self, name: str, version: str | None = None) -> Iterator[Trajectory]:
        """Lazily iterate an ingested dataset's trips."""
        return stream_csv(self.resolve(name, version) / DATA_FILENAME)

    def load(self, name: str, version: str | None = None) -> TrajectoryDataset:
        return TrajectoryDataset(self.stream(name, version))


def _resolve_ref(ref: str | Path, registry: DatasetRegistry | None) -> Path:
    """Map a dataset reference to a concrete path.

    A reference is, in order of precedence: an existing path (artifact
    directory, planar CSV file, or directory of per-object files), or a
    registry name (optionally ``name@version``).
    """
    path = Path(ref)
    if path.exists():
        if is_artifact(path):
            return path / DATA_FILENAME
        return path
    text = str(ref)
    if os.sep in text or text.endswith(".csv"):
        raise FileNotFoundError(f"dataset path {text!r} does not exist")
    registry = registry or DatasetRegistry()
    name, _, version = text.partition("@")
    return registry.resolve(name, version or None) / DATA_FILENAME


def stream_dataset(
    ref: str | Path, registry: DatasetRegistry | None = None
) -> Iterator[Trajectory]:
    """Lazily iterate any dataset reference (see :func:`_resolve_ref`).

    Planar CSVs and artifacts stream with bounded memory; a directory
    reference falls back to the materialising T-Drive-directory reader.
    """
    path = _resolve_ref(ref, registry)
    if path.is_dir():
        yield from read_tdrive_directory(path)
    else:
        yield from stream_csv(path)


def load_dataset(
    ref: str | Path, registry: DatasetRegistry | None = None
) -> TrajectoryDataset:
    """Materialise any dataset reference into a :class:`TrajectoryDataset`."""
    return TrajectoryDataset(stream_dataset(ref, registry))
