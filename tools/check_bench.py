#!/usr/bin/env python
"""The benchmark regression gate over the committed history.

Loads ``BENCH_history.jsonl`` (one versioned record per line, see
``repro.bench``), and for every ``(bench, scale)`` partition compares
the newest record against the sliding baseline window of the records
before it. Any tracked key classified as a significant degradation
fails the gate; minor degradations (and keys without a baseline yet)
only warn. Records from different scales are never compared — that is
the point of the partitioning.

Usage::

    PYTHONPATH=src python tools/check_bench.py             # CI gate
    PYTHONPATH=src python tools/check_bench.py --json      # machine form
    PYTHONPATH=src python tools/check_bench.py \
        --history BENCH_history.smoke.jsonl --warn-only    # smoke job

Exit codes: 0 clean (or ``--warn-only``), 1 significant degradation,
2 the checker itself failed (missing/corrupt history). CI runs this
enforcing as the ``bench`` section of the unified
``tools/check_static.py`` gate, and warn-only over the smoke history
in the ``bench-smoke`` job (shared-runner timings are noisy).

To bless an intentional regression, append the run that exhibits it
to the history (``REPRO_BENCH_SCALE=paper pytest benchmarks`` or
``repro bench record --snapshot BENCH_engine.json``) — once recorded
it joins the baseline window. See ``docs/benchmarks.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.jsonl"
DEFAULT_WINDOW = 5


def gate(
    history_path: Path | str | None = None,
    window: int = DEFAULT_WINDOW,
    minor: float = 0.05,
    significant: float = 0.15,
):
    """One comparison per (bench, scale) partition of the history.

    Raises ``repro.bench.HistoryError`` (or ``ValueError`` for bad
    thresholds) — the caller decides whether that is exit 2 or a
    section error.
    """
    from repro.bench import BenchHistory, Thresholds

    history = BenchHistory(history_path or DEFAULT_HISTORY)
    thresholds = Thresholds(minor=minor, significant=significant)
    return history.compare_all(window=window, thresholds=thresholds)


def problems_of(comparison) -> list[str]:
    """The gate-failing lines of one comparison."""
    return [
        f"{comparison.bench} @ {comparison.scale_key}: {shift.render()}"
        for shift in comparison.significant_degradations
    ]


def warnings_of(comparison) -> list[str]:
    """The non-failing notices of one comparison."""
    notices = [
        f"{comparison.bench} @ {comparison.scale_key}: {shift.render()}"
        for shift in comparison.minor_degradations
    ]
    notices.extend(
        f"{comparison.bench} @ {comparison.scale_key}: {key}: "
        f"no baseline yet"
        for key in comparison.new_keys
    )
    notices.extend(
        f"{comparison.bench} @ {comparison.scale_key}: {key}: "
        f"in baseline but absent from candidate"
        for key in comparison.missing_keys
    )
    return notices


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="check_bench")
    parser.add_argument(
        "--history",
        default=None,
        metavar="JSONL",
        help=f"record store to gate (default: {DEFAULT_HISTORY})",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        metavar="N",
        help="baseline window: the last N same-scale records",
    )
    parser.add_argument(
        "--minor", type=float, default=0.05, metavar="FRACTION",
        help="relative shift that warns",
    )
    parser.add_argument(
        "--significant", type=float, default=0.15, metavar="FRACTION",
        help="relative shift that fails",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report degradations but always exit 0/2 (smoke timings "
        "on shared runners are noisy)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report",
    )
    args = parser.parse_args(argv)
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        comparisons = gate(
            history_path=args.history,
            window=args.window,
            minor=args.minor,
            significant=args.significant,
        )
    except Exception as exc:  # checker crash, not a finding: exit 2
        print(f"check_bench: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    failing = [c for c in comparisons if not c.clean]
    if args.json:
        print(
            json.dumps(
                {
                    "version": 1,
                    "clean": not failing,
                    "warn_only": args.warn_only,
                    "comparisons": [c.to_dict() for c in comparisons],
                },
                indent=2,
            )
        )
    else:
        for comparison in comparisons:
            print(comparison.render_human())
        if failing:
            names = ", ".join(
                f"{c.bench} @ {c.scale_key}" for c in failing
            )
            verdict = "warn-only, not failing" if args.warn_only else "FAIL"
            print(f"bench gate: significant degradation in {names} "
                  f"({verdict})")
        else:
            print("bench gate clean")
    if failing and not args.warn_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
