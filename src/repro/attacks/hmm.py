"""Newson-Krumm HMM map matching [34].

Given a (possibly noisy/anonymized) point sequence and a road network,
find the most probable road path:

* **candidates** — for every sample, the road edges within
  ``candidate_radius`` metres (capped at ``max_candidates``);
* **emission** — Gaussian in the point-to-edge distance with std
  ``sigma``;
* **transition** — exponential in the *route/great-circle discrepancy*
  ``|route_distance - euclidean_distance|`` with scale ``beta`` (the
  Newson-Krumm robust transition);
* **decoding** — Viterbi over the trellis; samples with no candidates
  break the chain and matching restarts (gap handling as in the paper).

Route distances between consecutive candidates are computed with
cutoff-bounded Dijkstra searches from the candidate's edge endpoints.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.datagen.road_network import Edge, RoadNetwork
from repro.geo.geometry import Coord, point_distance
from repro.trajectory.model import Trajectory


@dataclass(frozen=True, slots=True)
class Candidate:
    """One candidate match: a point projected onto a road edge."""

    edge: Edge
    #: Projection of the sample onto the edge.
    position: Coord
    #: Distance from edge endpoint ``u`` to the projection, metres.
    offset: float
    #: Perpendicular distance from the sample to the edge.
    error: float


@dataclass(slots=True)
class MatchResult:
    """The decoded road path for one trajectory."""

    #: Matched candidate per sample (None where matching broke).
    candidates: list[Candidate | None]
    #: Ordered traversed edge keys, consecutive duplicates collapsed.
    edge_keys: list[tuple[int, int]]

    @property
    def matched_fraction(self) -> float:
        if not self.candidates:
            return 0.0
        matched = sum(1 for c in self.candidates if c is not None)
        return matched / len(self.candidates)


class HmmMapMatcher:
    """Viterbi map matching against a :class:`RoadNetwork`."""

    def __init__(
        self,
        network: RoadNetwork,
        sigma: float = 50.0,
        beta: float = 200.0,
        candidate_radius: float = 250.0,
        max_candidates: int = 5,
        route_cutoff_factor: float = 5.0,
    ) -> None:
        if sigma <= 0 or beta <= 0:
            raise ValueError("sigma and beta must be positive")
        self.network = network
        self.sigma = sigma
        self.beta = beta
        self.candidate_radius = candidate_radius
        self.max_candidates = max_candidates
        self.route_cutoff_factor = route_cutoff_factor

    # -- probabilities (log space) ---------------------------------------------------

    def _log_emission(self, error: float) -> float:
        return -0.5 * (error / self.sigma) ** 2

    def _log_transition(self, route_distance: float, straight: float) -> float:
        return -abs(route_distance - straight) / self.beta

    # -- candidate generation -----------------------------------------------------------

    def candidates_for(self, coord: Coord) -> list[Candidate]:
        hits = self.network.edges_near(coord, self.candidate_radius)
        candidates = []
        for edge, error in hits[: self.max_candidates]:
            position, offset = self.network.project(coord, edge)
            candidates.append(
                Candidate(edge=edge, position=position, offset=offset, error=error)
            )
        return candidates

    # -- route distance -------------------------------------------------------------------

    def _bounded_dijkstra(
        self, source: int, targets: set[int], cutoff: float
    ) -> dict[int, float]:
        """Distances from ``source`` to ``targets``, bounded by ``cutoff``."""
        found: dict[int, float] = {}
        dist = {source: 0.0}
        heap: list[tuple[float, int]] = [(0.0, source)]
        remaining = set(targets)
        while heap and remaining:
            d, node = heapq.heappop(heap)
            if d > cutoff:
                break
            if d > dist.get(node, float("inf")):
                continue
            if node in remaining:
                found[node] = d
                remaining.discard(node)
            for edge in self.network.adjacency[node]:
                neighbour = edge.other(node)
                candidate = d + edge.length
                if candidate <= cutoff and candidate < dist.get(
                    neighbour, float("inf")
                ):
                    dist[neighbour] = candidate
                    heapq.heappush(heap, (candidate, neighbour))
        return found

    def route_distance(self, a: Candidate, b: Candidate, cutoff: float) -> float:
        """Network distance between two candidate positions (inf if > cutoff)."""
        if a.edge.key == b.edge.key:
            return abs(b.offset - a.offset)
        targets = {b.edge.u, b.edge.v}
        best = float("inf")
        # Leave edge a via either endpoint, reach edge b via either endpoint.
        for exit_node, exit_cost in (
            (a.edge.u, a.offset),
            (a.edge.v, a.edge.length - a.offset),
        ):
            reached = self._bounded_dijkstra(exit_node, targets, cutoff)
            for enter_node, node_dist in reached.items():
                enter_cost = (
                    b.offset if enter_node == b.edge.u else b.edge.length - b.offset
                )
                total = exit_cost + node_dist + enter_cost
                if total < best:
                    best = total
        return best

    # -- decoding ------------------------------------------------------------------------------

    def match(self, trajectory: Trajectory) -> MatchResult:
        """Viterbi decoding of the whole trajectory."""
        coords = [p.coord for p in trajectory]
        matched: list[Candidate | None] = [None] * len(coords)

        segment_start = 0
        while segment_start < len(coords):
            segment_end = self._decode_segment(coords, segment_start, matched)
            segment_start = segment_end + 1

        edge_keys: list[tuple[int, int]] = []
        for candidate in matched:
            if candidate is None:
                continue
            key = candidate.edge.key
            if not edge_keys or edge_keys[-1] != key:
                edge_keys.append(key)
        return MatchResult(candidates=matched, edge_keys=edge_keys)

    def _decode_segment(
        self, coords: list[Coord], start: int, matched: list[Candidate | None]
    ) -> int:
        """Viterbi over a maximal run of samples with candidates.

        Returns the index of the last sample processed (the run ends at
        a candidate-less sample or the end of the trajectory).
        """
        first_candidates = self.candidates_for(coords[start])
        if not first_candidates:
            return start  # no candidates: leave unmatched, move on
        scores = [self._log_emission(c.error) for c in first_candidates]
        layers: list[list[Candidate]] = [first_candidates]
        backpointers: list[list[int]] = [[-1] * len(first_candidates)]

        end = start
        for index in range(start + 1, len(coords)):
            candidates = self.candidates_for(coords[index])
            if not candidates:
                break
            straight = point_distance(coords[index - 1], coords[index])
            cutoff = max(
                straight * self.route_cutoff_factor, 2.0 * self.candidate_radius
            )
            new_scores = []
            pointers = []
            for candidate in candidates:
                best_score = -math.inf
                best_prev = -1
                for prev_index, previous in enumerate(layers[-1]):
                    if scores[prev_index] == -math.inf:
                        continue
                    route = self.route_distance(previous, candidate, cutoff)
                    if math.isinf(route):
                        continue
                    score = scores[prev_index] + self._log_transition(
                        route, straight
                    )
                    if score > best_score:
                        best_score = score
                        best_prev = prev_index
                if best_prev >= 0:
                    best_score += self._log_emission(candidate.error)
                new_scores.append(best_score)
                pointers.append(best_prev)
            if all(s == -math.inf for s in new_scores):
                break
            layers.append(candidates)
            backpointers.append(pointers)
            scores = new_scores
            end = index

        # Backtrack from the best final state.
        best_final = max(range(len(scores)), key=lambda i: scores[i])
        position = best_final
        for layer_index in range(len(layers) - 1, -1, -1):
            if position < 0:
                break
            matched[start + layer_index] = layers[layer_index][position]
            position = backpointers[layer_index][position]
        return end
