#!/usr/bin/env python
"""Check `repro ...` invocations in the docs against the live CLI.

Scans fenced code blocks in README.md and docs/*.md for command lines
whose first token (after an optional ``$``) is ``repro``, and validates
each against the argparse tree built by ``repro.cli._build_parser()``:
the subcommand must exist, every ``--flag`` must be declared by that
subcommand, and positional values with declared choices must be valid.
Documentation can therefore never drift ahead of (or behind) the CLI —
CI runs this as the ``docs`` section of the unified
``tools/check_static.py`` gate.

Usage::

    PYTHONPATH=src python tools/check_docs.py [files...]

With no arguments, checks README.md and every docs/*.md relative to
the repository root. Exits non-zero listing every stale invocation.
"""

from __future__ import annotations

import argparse
import shlex
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _value_arity(action: argparse.Action) -> int:
    """How many value tokens a ``--flag value...`` invocation consumes."""
    if action.nargs is None:
        return 1
    if isinstance(action.nargs, int):
        return action.nargs
    return 0  # store_true/count/"?"-style: no mandatory value tokens


def build_spec() -> dict[str, dict]:
    """``{subcommand: {"options": {flag: arity}, "positional_choices": [...]}}``."""
    from repro.cli import _build_parser

    parser = _build_parser()
    sub_action = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    spec: dict[str, dict] = {}
    for name, subparser in sub_action.choices.items():
        positionals = [
            set(action.choices) if action.choices else None
            for action in subparser._actions
            if not action.option_strings
        ]
        spec[name] = {
            "options": {
                option: _value_arity(action)
                for option, action in subparser._option_string_actions.items()
            },
            "positional_choices": positionals,
        }
    return spec


def iter_doc_commands(path: Path):
    """Yield ``(line_number, tokens)`` for repro invocations in fenced
    code blocks, merging backslash line continuations."""
    in_fence = False
    pending: list[str] = []
    pending_line = 0
    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        stripped = raw.strip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            pending = []
            continue
        if not in_fence:
            continue
        if pending:
            pending.append(stripped.rstrip("\\").strip())
            if stripped.endswith("\\"):
                continue
            yield pending_line, shlex.split(" ".join(pending))
            pending = []
            continue
        if stripped.startswith("$ "):
            stripped = stripped[2:]
        if not (stripped == "repro" or stripped.startswith("repro ")):
            continue
        if stripped.endswith("\\"):
            pending = [stripped.rstrip("\\").strip()]
            pending_line = number
            continue
        yield number, shlex.split(stripped)


def check_command(tokens: list[str], spec: dict[str, dict]) -> list[str]:
    """Problems with one tokenised ``repro ...`` invocation."""
    if len(tokens) < 2:
        return ["bare `repro` invocation has no subcommand"]
    subcommand = tokens[1]
    if subcommand.startswith("-"):
        return []  # `repro --help` etc: top-level flags only
    if subcommand not in spec:
        return [
            f"unknown subcommand {subcommand!r} "
            f"(have: {', '.join(sorted(spec))})"
        ]
    entry = spec[subcommand]
    problems = []
    positional_index = 0
    skip_values = 0
    for token in tokens[2:]:
        if skip_values:
            skip_values -= 1
            continue
        is_long = token.startswith("--")
        is_short = (
            token.startswith("-") and len(token) == 2 and not token[1].isdigit()
        )
        if is_long or is_short:
            name = token.split("=", 1)[0]
            arity = entry["options"].get(name)
            if arity is None:
                problems.append(
                    f"{subcommand}: unknown flag {name!r} (have: "
                    f"{', '.join(sorted(o for o in entry['options'] if o.startswith('--')))})"
                )
            elif "=" not in token:
                skip_values = arity
            continue
        if positional_index < len(entry["positional_choices"]):
            choices = entry["positional_choices"][positional_index]
            if choices is not None and token not in choices:
                problems.append(
                    f"{subcommand}: invalid value {token!r} "
                    f"(choose from {', '.join(sorted(choices))})"
                )
            positional_index += 1
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        paths = [Path(arg) for arg in argv]
    else:
        paths = [REPO_ROOT / "README.md"] + sorted(
            (REPO_ROOT / "docs").glob("*.md")
        )
    spec = build_spec()
    failures = 0
    commands = 0
    for path in paths:
        if not path.is_file():
            print(f"{path}: missing", file=sys.stderr)
            failures += 1
            continue
        for line, tokens in iter_doc_commands(path):
            commands += 1
            for problem in check_command(tokens, spec):
                print(f"{path}:{line}: {problem}", file=sys.stderr)
                failures += 1
    print(f"checked {commands} repro invocations across {len(paths)} files")
    if failures:
        print(f"{failures} stale invocation(s) found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
