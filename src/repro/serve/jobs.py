"""Background job execution for the serving daemon.

The daemon splits into a sync API layer (:mod:`repro.serve.daemon`)
and this runner: :meth:`JobRunner.submit` performs validation and
budget admission on the caller's thread and returns immediately; the
accepted job then executes on a background worker pool driven by
:func:`~repro.engine.pool.parallel_map_stream` over a blocking queue,
against the process-wide warm :class:`~repro.serve.engines.EngineCache`.

A job's life::

    submit  -> queued      (eps_total reserved against the tenant)
    run     -> running
    success -> done        (ledger committed; result CSV in the spool)
    failure -> failed      (reservation released)

Determinism: frequency-family jobs run with a **pinned call index**
(0), so a job's output depends only on ``(dataset, spec, seed)`` —
byte-identical to ``repro anonymize --engine batch`` with the same
inputs, no matter how many requests the long-lived engine served
before it. Publish jobs (``publish={"chunk_size": N}``) route through
a fresh :func:`repro.api.publish` call instead — one whole-dataset
ε-DP release via the spill-pipelined ``StreamPublisher`` (spills under
``<spool>/<job-id>.spill/``), byte-identical to ``repro publish`` and
charged the publish ledger's composed ``eps_total``. Re-running a job re-publishes the *same* release (same
noise), which is why each job is still charged: the daemon refuses to
assume two requests are intentional replays.

Thread-safety: job state transitions and the id counter are guarded
by the runner lock; the worker callable (``_execute``) reaches shared
state only through that lock or the budget store's per-account locks
(``repro check``'s RACE001 traces reachability from the
``parallel_map_stream`` entry point below).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.api.registry import build
from repro.api.session import as_spec
from repro.api.spec import MethodSpec
from repro.core.pipeline import FrequencyAnonymizer
from repro.data.registry import DatasetRegistry, _resolve_ref, load_dataset
from repro.engine.batch import BatchAnonymizer
from repro.engine.pool import parallel_map_stream
from repro.serve.budget import BudgetStore
from repro.serve.engines import EngineCache

__all__ = ["JOB_STATES", "Job", "JobRunner"]

#: Every state a job can be observed in, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submitted anonymization job; mutated only under the runner
    lock, read freely by API threads via :meth:`to_dict` snapshots."""

    id: str
    tenant: str
    spec: MethodSpec
    dataset: str
    eps_total: float
    #: ``None`` for a plain anonymize job; validated publish options
    #: (``{"chunk_size": int}``) for a streaming-publish job.
    publish: dict | None = None
    state: str = "queued"
    error: str | None = None
    #: Epsilon actually charged on commit (≤ eps_total; 0 until done).
    eps_charged: float = 0.0
    #: The run's report summary (``AnonymizationReport.to_dict``).
    report: dict | None = None
    #: Where the runner spooled the anonymized CSV (done jobs only).
    result_path: Path | None = None
    seconds: float = 0.0
    trajectories: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def to_dict(self) -> dict:
        """Consistent JSON snapshot of the job (one lock acquisition)."""
        with self._lock:
            return {
                "id": self.id,
                "tenant": self.tenant,
                "state": self.state,
                "dataset": self.dataset,
                "spec": self.spec.to_dict(),
                "digest": self.spec.digest,
                "publish": None if self.publish is None else dict(self.publish),
                "eps_total": self.eps_total,
                "eps_charged": self.eps_charged,
                "trajectories": self.trajectories,
                "seconds": self.seconds,
                "error": self.error,
                "result_ready": self.state == "done",
            }


def epsilon_of(spec: MethodSpec, anonymizer) -> float:
    """A job's worst-case end-to-end epsilon, from its built method.

    Frequency pipelines and the DP baselines expose ``epsilon``; a
    method without one (the non-DP baselines) spends nothing and needs
    no reservation.
    """
    epsilon = getattr(anonymizer, "epsilon", None)
    if epsilon is None:
        epsilon = spec.params.get("epsilon")
    if epsilon is None:
        return 0.0
    return float(epsilon)


class JobRunner:
    """The background half of the daemon: a queue, a worker pool, and
    the reserve/commit/release protocol around every execution."""

    #: Queue sentinel that ends the job stream at shutdown.
    _DONE = object()

    def __init__(
        self,
        store: BudgetStore,
        engines: EngineCache,
        spool: str | Path,
        workers: int = 2,
        registry: DatasetRegistry | None = None,
        publish_workers: int | None = 1,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        self.store = store
        self.engines = engines
        self.spool = Path(spool)
        self.spool.mkdir(parents=True, exist_ok=True)
        self.workers = workers
        self.registry = registry
        #: Pass-2 fan-out for streaming-publish jobs (see
        #: :class:`~repro.engine.publish.StreamPublisher`).
        self.publish_workers = publish_workers
        self._jobs: dict[str, Job] = {}
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._sequence = 0
        self._closed = False
        self._drain = True
        self._pump = threading.Thread(
            target=self._run_pump, name="repro-serve-jobs", daemon=True
        )
        self._pump.start()

    # -- the sync half: admission -------------------------------------------

    def submit(
        self, tenant: str, spec, dataset: str, publish=None
    ) -> Job:
        """Validate, reserve the budget, and enqueue; returns the job.

        ``publish`` switches the job from plain anonymization to a
        whole-stream publish (one shared ε_G TF draw across chunks):
        a mapping of publish options, currently ``{"chunk_size": int}``
        (default 500). Publish jobs require a frequency-family spec.

        Raises :class:`~repro.serve.budget.BudgetExceededError` (the
        structured refusal), :class:`~repro.serve.budget.UnknownTenantError`,
        or ``ValueError``/``KeyError``/``FileNotFoundError`` for a bad
        spec, dataset reference, or publish option — all *before*
        anything is queued.
        """
        spec = as_spec(spec)
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    "the job runner is shutting down; not accepting jobs"
                )
            self._sequence += 1
            job_id = f"job-{self._sequence:06d}"
        # Build once to validate the spec and learn its epsilon; the
        # instance is discarded (execution uses the warm cache), but a
        # bad parameter set is refused here, on the caller's thread.
        anonymizer = build(spec)
        eps_total = epsilon_of(spec, anonymizer)
        publish_options = None
        if publish is not None:
            publish_options = dict(publish)
            unknown = set(publish_options) - {"chunk_size"}
            if unknown:
                raise ValueError(
                    f"unknown publish option(s): {sorted(unknown)}"
                )
            chunk_size = publish_options.setdefault("chunk_size", 500)
            if not isinstance(chunk_size, int) or chunk_size < 1:
                raise ValueError(
                    f"publish chunk_size must be a positive integer, "
                    f"got {chunk_size!r}"
                )
            if not isinstance(anonymizer, FrequencyAnonymizer):
                raise ValueError(
                    "publish jobs require a frequency-family method "
                    "(the shared TF estimate is the frequency pipeline's "
                    "global stage)"
                )
        _resolve_ref(dataset, self.registry)  # unknown refs refuse here too
        job = Job(
            id=job_id,
            tenant=tenant,
            spec=spec,
            dataset=str(dataset),
            eps_total=eps_total,
            publish=publish_options,
        )
        if eps_total > 0.0:
            self.store.reserve(tenant, job.id, eps_total)
        with self._lock:
            self._jobs[job.id] = job
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[key] for key in sorted(self._jobs)]

    # -- the async half: execution ------------------------------------------

    def _pending(self) -> Iterator[Job]:
        """Block on the queue until the shutdown sentinel arrives."""
        while True:
            item = self._queue.get()
            if item is self._DONE:
                return
            yield item

    def _run_pump(self) -> None:
        # parallel_map_stream pulls jobs only as pool slots free up and
        # yields them back in order; iterating it to exhaustion IS the
        # runner's lifetime. Thread executor: jobs share the warm
        # engine cache, and the engines' own pools provide the
        # CPU-level parallelism.
        for _ in parallel_map_stream(
            self._execute,
            self._pending(),
            workers=self.workers,
            executor="thread",
        ):
            pass

    def _execute(self, job: Job) -> Job:
        """Worker: run one job end to end; never raises (the job
        carries its failure)."""
        with job._lock:
            if self._abandoning():
                job.state = "failed"
                job.error = "daemon shut down before the job ran"
            else:
                job.state = "running"
        if job.state == "failed":
            self._settle_failure(job)
            return job
        started = time.perf_counter()
        try:
            result_path = self._run(job)
        except Exception as exc:  # noqa: BLE001 — the job carries it
            with job._lock:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                job.seconds = time.perf_counter() - started
            self._settle_failure(job)
            return job
        with job._lock:
            job.result_path = result_path
            job.seconds = time.perf_counter() - started
            job.state = "done"
        return job

    def _run(self, job: Job) -> Path:
        """Execute the anonymization and spool the result atomically."""
        from repro.trajectory.io import write_csv

        if job.publish is not None:
            return self._run_publish(job)
        engine = self.engines.get(job.spec)
        dataset = load_dataset(job.dataset, self.registry)
        if isinstance(engine, BatchAnonymizer):
            # Pinned call index: output depends only on (dataset, spec,
            # seed) — byte-identical to a fresh `--engine batch` run.
            result, report = engine.anonymize_with_report(
                dataset, call_index=0
            )
        elif isinstance(engine, FrequencyAnonymizer):
            result, report = engine.anonymize_with_report(
                dataset, call_index=0
            )
        elif hasattr(engine, "anonymize_with_report"):
            result, report = engine.anonymize_with_report(dataset)
        else:
            result, report = engine.anonymize(dataset), None
        target = self.spool / f"{job.id}.csv"
        staging = target.with_suffix(".tmp")
        write_csv(result, staging)
        staging.replace(target)
        ledger = None if report is None else report.accounting
        charged = 0.0
        if job.eps_total > 0.0:
            charged = self.store.commit(job.tenant, job.id, ledger)
        with job._lock:
            job.eps_charged = charged
            job.trajectories = len(result)
            job.report = None if report is None else report.to_dict()
        return target

    def _run_publish(self, job: Job) -> Path:
        """Execute a streaming-publish job and spool the merged CSV.

        Runs through :func:`repro.api.publish` on a fresh pipeline
        (call index 0 by construction, so the release depends only on
        ``(dataset, spec, seed)`` like every other job), spilling
        pass-1 chunks under the spool and streaming worker-encoded CSV
        bytes straight into the staging file. The commit charges the
        publish ledger — ``eps_G + max-per-chunk eps_L``, exactly the
        reservation.
        """
        import csv
        import io

        from repro.api.session import publish as api_publish
        from repro.engine.publish import chunk_source
        from repro.trajectory.io import CSV_HEADER

        target = self.spool / f"{job.id}.csv"
        staging = target.with_suffix(".tmp")
        spill_dir = self.spool / f"{job.id}.spill"
        try:
            with open(staging, "wb") as handle:
                header = io.StringIO(newline="")
                csv.writer(header).writerow(CSV_HEADER)
                handle.write(header.getvalue().encode("utf-8"))
                report = api_publish(
                    job.spec,
                    chunk_source(
                        job.dataset, job.publish["chunk_size"], self.registry
                    ),
                    publish_workers=self.publish_workers,
                    spill_dir=spill_dir,
                    byte_sink=lambda rows, _report: handle.write(rows),
                )
            staging.replace(target)
        finally:
            staging.unlink(missing_ok=True)
        charged = 0.0
        if job.eps_total > 0.0:
            charged = self.store.commit(job.tenant, job.id, report.accounting)
        with job._lock:
            job.eps_charged = charged
            job.trajectories = report.trajectories
            job.report = report.to_dict()
        return target

    def _settle_failure(self, job: Job) -> None:
        if job.eps_total > 0.0:
            self.store.release(
                job.tenant, job.id, reason=job.error or "failed"
            )

    def _abandoning(self) -> bool:
        with self._lock:
            return self._closed and not self._drain

    # -- lifecycle -----------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop accepting jobs and shut the pump down; idempotent.

        ``drain=True`` (the default) lets every queued and in-flight
        job finish; ``drain=False`` fails queued jobs immediately
        (their reservations are released — they never executed).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._drain = drain
        self._queue.put(self._DONE)
        self._pump.join()
