"""Tests for the preprocessing pipeline in ``repro.data.preprocess``."""

import pytest

from repro.data.preprocess import (
    IngestStats,
    PreprocessConfig,
    preprocess_stream,
    preprocess_trajectory,
    resample,
    split_gaps,
)
from repro.trajectory.model import Point, Trajectory


def traj(object_id, samples):
    return Trajectory(object_id, [Point(x, y, t) for t, x, y in samples])


class TestConfig:
    def test_defaults_valid(self):
        PreprocessConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gap_threshold_s": 0.0},
            {"min_points": 0},
            {"bbox": (10.0, 0.0, 0.0, 10.0)},
            {"resample_dt": -1.0},
            {"snap": 0.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            PreprocessConfig(**kwargs)

    def test_key_depends_on_knobs(self):
        base = PreprocessConfig()
        assert base.key() == PreprocessConfig().key()
        assert base.key() != PreprocessConfig(gap_threshold_s=60.0).key()

    def test_dict_round_trip(self):
        config = PreprocessConfig(bbox=(0.0, 0.0, 1.0, 1.0), resample_dt=30.0)
        assert PreprocessConfig.from_dict(config.to_dict()) == config


class TestSplitGaps:
    def test_exact_threshold_gap_does_not_split(self):
        points = [Point(0, 0, 0.0), Point(1, 1, 100.0)]
        assert len(split_gaps(points, threshold_s=100.0)) == 1

    def test_gap_just_over_threshold_splits(self):
        points = [Point(0, 0, 0.0), Point(1, 1, 100.0 + 1e-6)]
        trips = split_gaps(points, threshold_s=100.0)
        assert [len(t) for t in trips] == [1, 1]

    def test_multiple_gaps(self):
        points = [
            Point(0, 0, 0.0),
            Point(0, 0, 10.0),
            Point(0, 0, 1000.0),
            Point(0, 0, 1010.0),
            Point(0, 0, 5000.0),
        ]
        trips = split_gaps(points, threshold_s=60.0)
        assert [len(t) for t in trips] == [2, 2, 1]

    def test_empty(self):
        assert split_gaps([], 60.0) == []


class TestResample:
    def test_fixed_grid_interpolation(self):
        points = [Point(0.0, 0.0, 0.0), Point(100.0, 0.0, 100.0)]
        result = resample(points, dt=25.0)
        assert [p.t for p in result] == [0.0, 25.0, 50.0, 75.0, 100.0]
        assert [p.x for p in result] == pytest.approx([0, 25, 50, 75, 100])

    def test_grid_never_extrapolates(self):
        points = [Point(0.0, 0.0, 0.0), Point(10.0, 0.0, 90.0)]
        result = resample(points, dt=60.0)
        assert [p.t for p in result] == [0.0, 60.0]

    def test_single_point_passthrough(self):
        points = [Point(1.0, 2.0, 3.0)]
        assert resample(points, dt=10.0) == points


class TestPreprocessTrajectory:
    def test_single_point_trip_dropped_by_default(self):
        raw = traj("a", [(0.0, 0, 0), (10.0, 1, 1), (10_000.0, 2, 2)])
        trips = preprocess_trajectory(raw, PreprocessConfig())
        assert [t.object_id for t in trips] == ["a#0"]
        assert len(trips[0]) == 2

    def test_single_point_trip_kept_with_min_points_1(self):
        raw = traj("a", [(0.0, 0, 0), (10.0, 1, 1), (10_000.0, 2, 2)])
        trips = preprocess_trajectory(raw, PreprocessConfig(min_points=1))
        assert [t.object_id for t in trips] == ["a#0", "a#1"]

    def test_unsplit_trajectory_keeps_id(self):
        raw = traj("a", [(0.0, 0, 0), (10.0, 1, 1)])
        trips = preprocess_trajectory(raw, PreprocessConfig())
        assert [t.object_id for t in trips] == ["a"]

    def test_sorts_and_dedups_timestamps(self):
        raw = traj("a", [(10.0, 1, 1), (0.0, 0, 0), (10.0, 9, 9), (20.0, 2, 2)])
        stats = IngestStats()
        trips = preprocess_trajectory(raw, PreprocessConfig(), stats)
        assert [p.t for p in trips[0]] == [0.0, 10.0, 20.0]
        # First sample of the duplicated instant wins (file order after sort).
        assert trips[0].points[1].x == 1
        assert stats.duplicate_timestamps == 1

    def test_bbox_filter(self):
        raw = traj("a", [(0.0, 0, 0), (10.0, 500, 0), (20.0, 1, 1)])
        stats = IngestStats()
        trips = preprocess_trajectory(
            raw, PreprocessConfig(bbox=(-10.0, -10.0, 10.0, 10.0)), stats
        )
        assert len(trips[0]) == 2
        assert stats.out_of_bbox == 1

    def test_snap_collapses_repeat_visits(self):
        raw = traj("a", [(0.0, 0.4, 0.0), (10.0, 0.6, 0.0)])
        trips = preprocess_trajectory(raw, PreprocessConfig(snap=1.0))
        assert [p.x for p in trips[0]] == [0.0, 1.0]

    def test_resample_applied_per_trip(self):
        raw = traj("a", [(0.0, 0, 0), (100.0, 100, 0)])
        trips = preprocess_trajectory(raw, PreprocessConfig(resample_dt=50.0))
        assert [p.t for p in trips[0]] == [0.0, 50.0, 100.0]

    def test_stats_totals(self):
        raw = traj("a", [(0.0, 0, 0), (10.0, 1, 1), (10_000.0, 2, 2)])
        stats = IngestStats()
        preprocess_trajectory(raw, PreprocessConfig(), stats)
        assert stats.objects_in == 1
        assert stats.points_in == 3
        assert stats.gap_splits == 1
        assert stats.short_trips == 1
        assert stats.trips_out == 1
        assert stats.points_out == 2
        assert "1 trips" in stats.summary()


class TestPreprocessStream:
    def test_lazy_and_order_preserving(self):
        pulled = []

        def source():
            for i in range(5):
                pulled.append(i)
                yield traj(f"t{i}", [(0.0, 0, 0), (1.0, 1, 1)])

        stream = preprocess_stream(source(), PreprocessConfig())
        first = next(stream)
        assert first.object_id == "t0"
        assert pulled == [0]  # only one source trajectory consumed so far
        rest = [t.object_id for t in stream]
        assert rest == ["t1", "t2", "t3", "t4"]

    def test_default_config(self):
        trips = list(preprocess_stream([traj("a", [(0.0, 0, 0), (1.0, 1, 1)])]))
        assert len(trips) == 1
