"""Intraprocedural control-flow graphs over ``ast``.

:func:`build_cfg` turns one function body into a :class:`CFG`: one
node per statement (plus synthetic ``entry``/``exit``/``raise``
nodes), with edges labelled by *kind* so a dataflow client can tell a
normal fall-through from an exception edge. The graph models the
control constructs the flow-sensitive rules care about:

* branches (``if``/``elif``/``else``), with ``true``/``false`` edges
  out of the test node;
* loops (``while``/``for``, both with ``else``), with ``back`` edges
  to the loop head and ``break``/``continue`` jumps — ``while`` over
  a constant-true test gets no ``false`` edge (the only exits are
  ``break``/``return``/``raise``);
* ``try``/``except``/``else``/``finally``: every may-raise statement
  gets an ``exc`` edge to the live handlers (and, when no handler is
  a catch-all, onward to the enclosing context or the ``raise``
  exit). ``finally`` bodies are *duplicated per continuation* — the
  normal instance plus lazily-built copies for the exception,
  ``return``, ``break``, and ``continue`` unwind paths (copy nodes
  carry a ``~exc``/``~return``/… label tag) — so a ``return`` inside
  a ``finally`` correctly swallows the pending exception;
* ``with``: the body is bracketed by a synthetic ``WithExit`` node
  per leaving path, because ``__exit__`` runs on *every* exit,
  including the exception edge — the resource-lifecycle rule treats
  that node as the release point;
* early ``return``/``raise`` (threaded through enclosing ``finally``
  blocks, innermost first).

Exception edges are deliberately conservative: every statement that
can plausibly raise (anything but ``pass``/``break``/``continue``/
``global``/``nonlocal``) gets one. That is exactly the pessimism the
lifecycle and ledger rules need — "the statement between ``reserve``
and ``commit`` may raise" is the bug class they exist to catch.

The graph is deterministic: nodes are numbered in creation order and
:meth:`CFG.edge_set` renders ``(src_label, dst_label, kind)`` triples
the corner-case tests assert exactly.

This module is a leaf — stdlib ``ast`` only. The fixpoint engine that
consumes these graphs lives in :mod:`repro.analysis.dataflow`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFG", "Edge", "Node", "build_cfg"]

#: Statements that can never raise at runtime (no expression is
#: evaluated); everything else gets a conservative ``exc`` edge.
_NO_RAISE = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)


@dataclass
class Node:
    """One CFG node: a statement, or a synthetic control point."""

    #: Position in ``cfg.nodes`` (creation order; edges reference it).
    index: int
    #: ``"entry"`` | ``"exit"`` | ``"raise"`` | ``"stmt"`` |
    #: ``"handler"`` | ``"with-exit"``.
    kind: str
    #: The statement (or ``ExceptHandler``/``With``) this node models;
    #: None for ``entry``/``exit``/``raise``.
    stmt: ast.AST | None = None
    #: Unwind-copy tags (``("exc",)`` for a node inside the
    #: exception-path copy of a ``finally`` body). Empty for the
    #: primary instance.
    tags: tuple[str, ...] = ()

    @property
    def label(self) -> str:
        """Stable human identity: ``Assign:4``, ``WithExit:7~exc``…"""
        if self.kind in ("entry", "exit", "raise"):
            return self.kind
        if self.kind == "with-exit":
            base = f"WithExit:{self.stmt.lineno}"
        else:
            base = f"{type(self.stmt).__name__}:{self.stmt.lineno}"
        return base + "".join(f"~{tag}" for tag in self.tags)


@dataclass(frozen=True)
class Edge:
    """A directed control-flow edge between two node indices.

    Kinds: ``next`` (sequential), ``true``/``false`` (out of a branch
    or loop test), ``back`` (loop back edge), ``break``/``continue``/
    ``return`` (jumps, threaded through ``finally`` copies), ``raise``
    (out of an explicit ``raise``), ``exc`` (implicit may-raise).
    Dataflow clients propagate the *pre-effect* state along ``exc``
    edges and the post-effect state along everything else.
    """

    src: int
    dst: int
    kind: str


@dataclass
class CFG:
    """The control-flow graph of one function."""

    func: ast.AST
    nodes: list[Node] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._edge_keys: set[tuple[int, int, str]] = set()
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self.raise_exit = self._new("raise")

    def _new(
        self, kind: str, stmt: ast.AST | None = None, tags: tuple[str, ...] = ()
    ) -> Node:
        node = Node(index=len(self.nodes), kind=kind, stmt=stmt, tags=tags)
        self.nodes.append(node)
        return node

    def add_edge(self, src: Node, dst: Node, kind: str) -> None:
        key = (src.index, dst.index, kind)
        if key in self._edge_keys:
            return
        self._edge_keys.add(key)
        self.edges.append(Edge(src.index, dst.index, kind))

    # -- queries --------------------------------------------------------

    def successors(self, node: Node) -> list[tuple[Node, str]]:
        return [
            (self.nodes[edge.dst], edge.kind)
            for edge in self.edges
            if edge.src == node.index
        ]

    def predecessors(self, node: Node) -> list[tuple[Node, str]]:
        return [
            (self.nodes[edge.src], edge.kind)
            for edge in self.edges
            if edge.dst == node.index
        ]

    def edge_set(self) -> set[tuple[str, str, str]]:
        """``{(src_label, dst_label, kind)}`` — the exact-edge-set form
        the CFG corner-case tests assert against."""
        return {
            (self.nodes[e.src].label, self.nodes[e.dst].label, e.kind)
            for e in self.edges
        }


# -- builder frames ------------------------------------------------------


@dataclass
class _LoopFrame:
    """``break``/``continue`` targets of the innermost loop."""

    head: Node
    breaks: list[tuple[Node, str]] = field(default_factory=list)


@dataclass
class _HandlerFrame:
    """Live ``except`` clauses of an enclosing ``try``."""

    entries: list[Node]
    catch_all: bool


@dataclass
class _FinallyFrame:
    """An enclosing ``finally`` body every unwind must run."""

    body: list[ast.stmt]
    #: kind -> entry node of the lazily-built unwind copy.
    copies: dict[str, Node] = field(default_factory=dict)


@dataclass
class _WithFrame:
    """An enclosing ``with`` whose ``__exit__`` runs on every unwind."""

    stmt: ast.AST
    copies: dict[str, Node] = field(default_factory=dict)


def _is_constant_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    return isinstance(handler.type, ast.Name) and handler.type.id in (
        "BaseException",
        "Exception",
    )


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.frames: list = []
        #: Accumulated unwind-copy tags for nodes created right now.
        self.tags: tuple[str, ...] = ()

    def build(self, func: ast.AST) -> None:
        dangling = self._stmts(func.body, [(self.cfg.entry, "next")])
        self._connect(dangling, self.cfg.exit)

    # -- plumbing ------------------------------------------------------

    def _node(self, kind: str, stmt: ast.AST | None) -> Node:
        return self.cfg._new(kind, stmt, self.tags)

    def _connect(
        self,
        preds: list[tuple[Node, str]],
        target: Node,
        kind: str | None = None,
    ) -> None:
        for node, edge_kind in preds:
            self.cfg.add_edge(node, target, kind or edge_kind)

    def _stmts(
        self, body: list[ast.stmt], preds: list[tuple[Node, str]]
    ) -> list[tuple[Node, str]]:
        for stmt in body:
            preds = self._stmt(stmt, preds)
        return preds

    def _stmt(
        self, stmt: ast.stmt, preds: list[tuple[Node, str]]
    ) -> list[tuple[Node, str]]:
        handler = getattr(self, f"_build_{type(stmt).__name__}", None)
        if handler is not None:
            return handler(stmt, preds)
        return self._simple(stmt, preds)

    def _simple(
        self, stmt: ast.stmt, preds: list[tuple[Node, str]]
    ) -> list[tuple[Node, str]]:
        node = self._node("stmt", stmt)
        self._connect(preds, node)
        if not isinstance(stmt, _NO_RAISE):
            self._route_exception(node)
        return [(node, "next")]

    # -- unwind routing ------------------------------------------------

    def _route_exception(self, src: Node, kind: str = "exc") -> None:
        """Wire ``src`` (which may raise) to every live landing site."""
        for position in range(len(self.frames) - 1, -1, -1):
            frame = self.frames[position]
            if isinstance(frame, _HandlerFrame):
                for entry in frame.entries:
                    self.cfg.add_edge(src, entry, kind)
                if frame.catch_all:
                    return
            elif isinstance(frame, (_FinallyFrame, _WithFrame)):
                entry = self._cleanup_entry(frame, "exc", position)
                self.cfg.add_edge(src, entry, kind)
                return
        self.cfg.add_edge(src, self.cfg.raise_exit, kind)

    def _route_return(self, src: Node) -> None:
        for position in range(len(self.frames) - 1, -1, -1):
            frame = self.frames[position]
            if isinstance(frame, (_FinallyFrame, _WithFrame)):
                entry = self._cleanup_entry(frame, "return", position)
                self.cfg.add_edge(src, entry, "return")
                return
        self.cfg.add_edge(src, self.cfg.exit, "return")

    def _route_break(self, src: Node) -> None:
        for position in range(len(self.frames) - 1, -1, -1):
            frame = self.frames[position]
            if isinstance(frame, _LoopFrame):
                frame.breaks.append((src, "break"))
                return
            if isinstance(frame, (_FinallyFrame, _WithFrame)):
                entry = self._cleanup_entry(frame, "break", position)
                self.cfg.add_edge(src, entry, "break")
                return

    def _route_continue(self, src: Node) -> None:
        for position in range(len(self.frames) - 1, -1, -1):
            frame = self.frames[position]
            if isinstance(frame, _LoopFrame):
                self.cfg.add_edge(src, frame.head, "continue")
                return
            if isinstance(frame, (_FinallyFrame, _WithFrame)):
                entry = self._cleanup_entry(frame, "continue", position)
                self.cfg.add_edge(src, entry, "continue")
                return

    def _cleanup_entry(self, frame, kind: str, position: int) -> Node:
        """Entry node of ``frame``'s unwind copy for ``kind`` — built
        lazily once, with the frame stack trimmed to the contexts that
        enclose the ``try``/``with`` itself (a ``return`` *inside* the
        copy must unwind from there, not from the unwind source)."""
        cached = frame.copies.get(kind)
        if cached is not None:
            return cached
        saved_frames, saved_tags = self.frames, self.tags
        self.frames = saved_frames[:position]
        self.tags = saved_tags + (kind,)
        try:
            if isinstance(frame, _WithFrame):
                entry = self._node("with-exit", frame.stmt)
                dangling: list[tuple[Node, str]] = [(entry, kind)]
            else:
                mark = len(self.cfg.nodes)
                dangling = self._stmts(frame.body, [])
                entry = self.cfg.nodes[mark]
            frame.copies[kind] = entry
            router = {
                "exc": self._route_exception,
                "return": self._route_return,
                "break": self._route_break,
                "continue": self._route_continue,
            }[kind]
            for node, _ in dangling:
                router(node)
        finally:
            self.frames, self.tags = saved_frames, saved_tags
        return entry

    # -- statement builders --------------------------------------------

    def _build_Return(self, stmt, preds):
        node = self._node("stmt", stmt)
        self._connect(preds, node)
        if stmt.value is not None:
            self._route_exception(node)
        self._route_return(node)
        return []

    def _build_Raise(self, stmt, preds):
        node = self._node("stmt", stmt)
        self._connect(preds, node)
        self._route_exception(node, kind="raise")
        return []

    def _build_Break(self, stmt, preds):
        node = self._node("stmt", stmt)
        self._connect(preds, node)
        self._route_break(node)
        return []

    def _build_Continue(self, stmt, preds):
        node = self._node("stmt", stmt)
        self._connect(preds, node)
        self._route_continue(node)
        return []

    def _build_If(self, stmt, preds):
        node = self._node("stmt", stmt)
        self._connect(preds, node)
        self._route_exception(node)
        dangling = self._stmts(stmt.body, [(node, "true")])
        if stmt.orelse:
            dangling += self._stmts(stmt.orelse, [(node, "false")])
        else:
            dangling.append((node, "false"))
        return dangling

    def _build_While(self, stmt, preds):
        node = self._node("stmt", stmt)
        self._connect(preds, node)
        self._route_exception(node)
        loop = _LoopFrame(head=node)
        self.frames.append(loop)
        body = self._stmts(stmt.body, [(node, "true")])
        self.frames.pop()
        self._connect(body, node, kind="back")
        dangling: list[tuple[Node, str]] = []
        if not _is_constant_true(stmt.test):
            # The `else` clause runs only on normal exhaustion, which a
            # constant-true loop never reaches.
            if stmt.orelse:
                dangling += self._stmts(stmt.orelse, [(node, "false")])
            else:
                dangling.append((node, "false"))
        dangling += loop.breaks
        return dangling

    def _build_For(self, stmt, preds):
        node = self._node("stmt", stmt)
        self._connect(preds, node)
        self._route_exception(node)
        loop = _LoopFrame(head=node)
        self.frames.append(loop)
        body = self._stmts(stmt.body, [(node, "true")])
        self.frames.pop()
        self._connect(body, node, kind="back")
        if stmt.orelse:
            dangling = self._stmts(stmt.orelse, [(node, "false")])
        else:
            dangling = [(node, "false")]
        dangling += loop.breaks
        return dangling

    _build_AsyncFor = _build_For

    def _build_With(self, stmt, preds):
        node = self._node("stmt", stmt)
        self._connect(preds, node)
        # Context-expression / __enter__ failures happen *before* the
        # resource is held, so they route past __exit__.
        self._route_exception(node)
        frame = _WithFrame(stmt=stmt)
        self.frames.append(frame)
        body = self._stmts(stmt.body, [(node, "next")])
        self.frames.pop()
        with_exit = self._node("with-exit", stmt)
        self._connect(body, with_exit)
        return [(with_exit, "next")]

    _build_AsyncWith = _build_With

    def _build_Try(self, stmt, preds):
        finally_frame = None
        if stmt.finalbody:
            finally_frame = _FinallyFrame(body=stmt.finalbody)
            self.frames.append(finally_frame)
        handler_nodes: list[Node] = []
        if stmt.handlers:
            handler_nodes = [self._node("handler", h) for h in stmt.handlers]
            self.frames.append(
                _HandlerFrame(
                    entries=handler_nodes,
                    catch_all=any(_is_catch_all(h) for h in stmt.handlers),
                )
            )
        dangling = self._stmts(stmt.body, preds)
        if stmt.handlers:
            # Handlers stop catching here: exceptions raised in the
            # handler bodies or the else clause route outward.
            self.frames.pop()
        if stmt.orelse:
            dangling = self._stmts(stmt.orelse, dangling)
        for handler_node, handler in zip(
            handler_nodes, stmt.handlers, strict=True
        ):
            dangling += self._stmts(handler.body, [(handler_node, "next")])
        if finally_frame is not None:
            self.frames.pop()
            # The normal-completion instance of the finally body (the
            # unwind copies are built lazily as they are needed).
            dangling = self._stmts(stmt.finalbody, dangling)
        return dangling

    _build_TryStar = _build_Try


def build_cfg(func: ast.AST) -> CFG:
    """The CFG of one ``FunctionDef``/``AsyncFunctionDef``.

    Nested function and class definitions inside ``func`` are treated
    as single opaque statements — each gets its own CFG when the rule
    walks to it.
    """
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"build_cfg wants a function node, got {type(func).__name__}")
    cfg = CFG(func=func)
    _Builder(cfg).build(func)
    return cfg
