"""A synthetic planar road network with shortest-path routing.

The network is a jittered grid: nodes sit near lattice positions, edges
connect lattice neighbours, and a fraction of edges is removed (while
keeping the graph connected) so the result has the irregular block
structure of a real street map rather than a perfect mesh. This is the
substrate for both the trajectory generator (vehicles move along
shortest paths) and the HMM map-matching recovery attack (candidate
edges, route distances).
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass

from repro.geo.geometry import BBox, Coord, point_distance, point_segment_distance, project_onto_segment


@dataclass(frozen=True, slots=True)
class Edge:
    """An undirected road segment between two node ids."""

    u: int
    v: int
    length: float

    def other(self, node: int) -> int:
        return self.v if node == self.u else self.u

    @property
    def key(self) -> tuple[int, int]:
        """Canonical (sorted) endpoint pair identifying this edge."""
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)


class RoadNetwork:
    """An undirected planar road graph with spatial lookup helpers.

    ``spur_tips`` lists the dead-end nodes of residential spur streets
    (cul-de-sacs); the fleet generator anchors personal places (homes,
    haunts) there, reproducing the excursion structure that makes
    signature points matter for map-matching recovery.
    """

    def __init__(
        self,
        coords: list[Coord],
        edges: list[tuple[int, int]],
        spur_tips: list[int] | None = None,
    ) -> None:
        self.spur_tips: list[int] = list(spur_tips or [])
        self.coords: list[Coord] = list(coords)
        self.adjacency: list[list[Edge]] = [[] for _ in self.coords]
        self.edges: list[Edge] = []
        seen: set[tuple[int, int]] = set()
        for u, v in edges:
            key = (u, v) if u < v else (v, u)
            if key in seen or u == v:
                continue
            seen.add(key)
            edge = Edge(u, v, point_distance(self.coords[u], self.coords[v]))
            self.edges.append(edge)
            self.adjacency[u].append(edge)
            self.adjacency[v].append(edge)
        self._cell_size = 0.0
        self._node_grid: dict[tuple[int, int], list[int]] = {}
        self._edge_grid: dict[tuple[int, int], list[Edge]] = {}
        self._build_spatial_grids()

    # -- construction helpers ------------------------------------------------

    def _build_spatial_grids(self) -> None:
        if not self.coords:
            return
        box = self.bbox()
        # Cell size chosen so the average cell holds a handful of nodes.
        target_cells = max(len(self.coords), 1)
        side = math.sqrt(max(box.width * box.height, 1.0) / target_cells)
        self._cell_size = max(side, 1.0)
        for node, coord in enumerate(self.coords):
            self._node_grid.setdefault(self._cell_of(coord), []).append(node)
        for edge in self.edges:
            for cell in self._cells_touching(edge):
                self._edge_grid.setdefault(cell, []).append(edge)

    def _cell_of(self, coord: Coord) -> tuple[int, int]:
        return (
            int(math.floor(coord[0] / self._cell_size)),
            int(math.floor(coord[1] / self._cell_size)),
        )

    def _cells_touching(self, edge: Edge) -> set[tuple[int, int]]:
        """All grid cells whose bbox the edge's bbox overlaps."""
        a = self.coords[edge.u]
        b = self.coords[edge.v]
        cx0, cy0 = self._cell_of((min(a[0], b[0]), min(a[1], b[1])))
        cx1, cy1 = self._cell_of((max(a[0], b[0]), max(a[1], b[1])))
        return {
            (cx, cy)
            for cx in range(cx0, cx1 + 1)
            for cy in range(cy0, cy1 + 1)
        }

    # -- basic queries --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.coords)

    def bbox(self) -> BBox:
        return BBox.from_points(self.coords)

    def node_coord(self, node: int) -> Coord:
        return self.coords[node]

    def nearest_node(self, coord: Coord) -> int:
        """The node closest to ``coord`` (grid-accelerated)."""
        if not self.coords:
            raise ValueError("empty road network")
        cx, cy = self._cell_of(coord)
        best_node = -1
        best_dist = float("inf")
        for ring in range(0, 64):
            candidates: list[int] = []
            for dx in range(-ring, ring + 1):
                for dy in range(-ring, ring + 1):
                    if max(abs(dx), abs(dy)) != ring:
                        continue
                    candidates.extend(self._node_grid.get((cx + dx, cy + dy), ()))
            for node in candidates:
                d = point_distance(coord, self.coords[node])
                if d < best_dist:
                    best_dist = d
                    best_node = node
            # Once a candidate is found, one extra ring guarantees
            # correctness (cells are axis-aligned, distance is radial).
            if best_node >= 0 and best_dist <= ring * self._cell_size:
                break
        if best_node < 0:
            # Fallback: brute force (only reachable for pathological grids).
            best_node = min(
                range(len(self.coords)),
                key=lambda n: point_distance(coord, self.coords[n]),
            )
        return best_node

    def edges_near(self, coord: Coord, radius: float) -> list[tuple[Edge, float]]:
        """Edges whose distance to ``coord`` is at most ``radius``.

        Returns ``(edge, distance)`` pairs sorted by distance; this is
        the candidate-generation primitive for HMM map matching.
        """
        cx0, cy0 = self._cell_of((coord[0] - radius, coord[1] - radius))
        cx1, cy1 = self._cell_of((coord[0] + radius, coord[1] + radius))
        seen: set[tuple[int, int]] = set()
        result: list[tuple[Edge, float]] = []
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                for edge in self._edge_grid.get((cx, cy), ()):
                    if edge.key in seen:
                        continue
                    seen.add(edge.key)
                    d = point_segment_distance(
                        coord, self.coords[edge.u], self.coords[edge.v]
                    )
                    if d <= radius:
                        result.append((edge, d))
        result.sort(key=lambda item: item[1])
        return result

    def project(self, coord: Coord, edge: Edge) -> tuple[Coord, float]:
        """Project ``coord`` onto ``edge``; returns (point, offset from u)."""
        a = self.coords[edge.u]
        b = self.coords[edge.v]
        closest, t = project_onto_segment(coord, a, b)
        return closest, t * edge.length

    # -- routing -----------------------------------------------------------------

    def shortest_path(self, source: int, target: int) -> list[int]:
        """Dijkstra shortest path as a node-id list (inclusive of both ends).

        Raises ``ValueError`` when no path exists (should not happen on
        the connected networks built by :func:`build_road_network`).
        """
        if source == target:
            return [source]
        dist = {source: 0.0}
        parent: dict[int, int] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if node == target:
                break
            if d > dist.get(node, float("inf")):
                continue
            for edge in self.adjacency[node]:
                neighbour = edge.other(node)
                candidate = d + edge.length
                if candidate < dist.get(neighbour, float("inf")):
                    dist[neighbour] = candidate
                    parent[neighbour] = node
                    heapq.heappush(heap, (candidate, neighbour))
        if target not in parent and source != target:
            raise ValueError(f"no path between nodes {source} and {target}")
        path = [target]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    def network_distance(self, source: int, target: int) -> float:
        """Shortest-path length between two nodes."""
        path = self.shortest_path(source, target)
        return sum(
            point_distance(self.coords[path[i]], self.coords[path[i + 1]])
            for i in range(len(path) - 1)
        )

    def path_coords(self, path: list[int]) -> list[Coord]:
        return [self.coords[node] for node in path]

    def route_points(self, path: list[int], step: float) -> list[Coord]:
        """Sample points every ``step`` metres along a node path.

        The first node's coordinate is always included, subsequent points
        are spaced ``step`` metres apart along the polyline, and the last
        node is included as the final sample. This is how the generator
        turns a route into GPS-like samples.
        """
        coords = self.path_coords(path)
        if len(coords) < 2:
            return list(coords)
        samples = [coords[0]]
        carried = 0.0
        for i in range(len(coords) - 1):
            a = coords[i]
            b = coords[i + 1]
            seg_len = point_distance(a, b)
            if seg_len == 0.0:
                continue
            position = step - carried
            while position < seg_len:
                fraction = position / seg_len
                samples.append(
                    (a[0] + fraction * (b[0] - a[0]), a[1] + fraction * (b[1] - a[1]))
                )
                position += step
            carried = seg_len - (position - step)
        if samples[-1] != coords[-1]:
            samples.append(coords[-1])
        return samples


def build_road_network(
    rows: int = 40,
    cols: int = 40,
    spacing: float = 600.0,
    jitter: float = 0.15,
    removal_fraction: float = 0.12,
    n_spurs: int = 0,
    spur_length: tuple[int, int] = (2, 3),
    seed: int = 7,
) -> RoadNetwork:
    """Build a jittered-grid road network with optional spur streets.

    Parameters
    ----------
    rows, cols:
        Lattice dimensions; the default 40x40 at 600 m spacing covers a
        ~24 km square, roughly central Beijing's extent.
    spacing:
        Lattice spacing in metres. 600 m matches T-Drive's mean
        point-to-point distance so routes sampled at one point per node
        reproduce the paper's spacing statistic.
    jitter:
        Node position noise as a fraction of ``spacing``.
    removal_fraction:
        Fraction of lattice edges removed (connectivity preserved) to
        break the perfect-mesh regularity.
    n_spurs:
        Number of dead-end residential spur streets attached to random
        lattice nodes. Each spur is a chain of ``spur_length`` edges
        ending in a cul-de-sac tip (recorded in ``spur_tips``). Visits
        to a spur tip are *excursions*: a vehicle must drive in and back
        out, so the spur edges only appear in routes of objects anchored
        there — the structural reason signature points are recoverable
        by map matching.
    spur_length:
        Inclusive range of spur chain length in edges.
    seed:
        RNG seed; the same seed always produces the same network.
    """
    rng = random.Random(seed)
    coords: list[Coord] = []
    for r in range(rows):
        for c in range(cols):
            dx = rng.uniform(-jitter, jitter) * spacing
            dy = rng.uniform(-jitter, jitter) * spacing
            coords.append((c * spacing + dx, r * spacing + dy))

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    lattice_edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                lattice_edges.append((node_id(r, c), node_id(r, c + 1)))
            if r + 1 < rows:
                lattice_edges.append((node_id(r, c), node_id(r + 1, c)))

    # Remove a random subset of edges while keeping the graph connected,
    # using a union-find over the kept edges: shuffle, mark the first
    # spanning subset as mandatory, then drop from the remainder.
    rng.shuffle(lattice_edges)
    parent = list(range(rows * cols))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    mandatory: list[tuple[int, int]] = []
    optional: list[tuple[int, int]] = []
    for u, v in lattice_edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            mandatory.append((u, v))
        else:
            optional.append((u, v))
    keep_optional = int(len(optional) * (1.0 - removal_fraction * len(lattice_edges) / max(len(optional), 1)))
    keep_optional = max(0, min(len(optional), keep_optional))
    edges = mandatory + optional[:keep_optional]

    # Attach dead-end spur streets. Each spur grows outward from a
    # random lattice node in a random direction, at ~half the lattice
    # spacing (residential streets are shorter than arterials).
    spur_tips: list[int] = []
    spur_spacing = spacing * 0.5
    for _ in range(n_spurs):
        anchor = rng.randrange(rows * cols)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        chain = rng.randint(*spur_length)
        previous = anchor
        for step in range(1, chain + 1):
            x = coords[anchor][0] + step * spur_spacing * math.cos(angle)
            y = coords[anchor][1] + step * spur_spacing * math.sin(angle)
            x += rng.uniform(-jitter, jitter) * spur_spacing
            y += rng.uniform(-jitter, jitter) * spur_spacing
            coords.append((x, y))
            node = len(coords) - 1
            edges.append((previous, node))
            previous = node
        spur_tips.append(previous)
    return RoadNetwork(coords, edges, spur_tips=spur_tips)
