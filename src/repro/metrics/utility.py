"""Utility-preservation metrics: INF, DE, TE, FFP (Table II columns).

* **INF** — point-based information loss [31]: for every original
  sample, the (capped, normalised) distance to the anonymized
  counterpart trajectory; 0 when every point survives in place, 1 when
  the anonymized data retains nothing within the cap. Distance-based
  rather than exact-match so that small perturbations (W4M) cost little
  while deletions of dwell clusters and synthetic regeneration (DPT)
  cost a lot — reproducing the orderings the paper reports.
* **DE** — Jensen-Shannon divergence between the distributions of
  per-trajectory diameters [32].
* **TE** — Jensen-Shannon divergence between trip (origin, destination)
  distributions over a coarse grid [32].
* **FFP** — F-measure between the top-N frequent movement patterns of
  the original and anonymized datasets [33].
"""

from __future__ import annotations

import math
from collections import Counter

from repro.geo.geometry import point_segment_distance
from repro.metrics.patterns import top_patterns
from repro.trajectory.model import Trajectory, TrajectoryDataset

#: Distance (metres) at which an original point is considered fully lost.
INF_DISTANCE_CAP = 1000.0


def _distance_to_trajectory(coord, trajectory: Trajectory) -> float:
    """Minimum distance from a coordinate to the trajectory polyline."""
    points = trajectory.points
    if not points:
        return float("inf")
    if len(points) == 1:
        return math.hypot(coord[0] - points[0].x, coord[1] - points[0].y)
    best = float("inf")
    for i in range(len(points) - 1):
        d = point_segment_distance(
            coord, points[i].coord, points[i + 1].coord
        )
        if d < best:
            best = d
            if best == 0.0:
                break
    return best


class _TrajectoryDistanceOracle:
    """Nearest-polyline-distance queries against one trajectory.

    Trajectories beyond a handful of points get a numpy segment batch
    (one vectorised pass per query); tiny ones use the scalar loop.
    """

    _VECTOR_THRESHOLD = 8

    def __init__(self, trajectory: Trajectory) -> None:
        self._trajectory = trajectory
        self._segments = None
        if len(trajectory) > self._VECTOR_THRESHOLD:
            from repro.geo.vectorized import SegmentArray

            self._segments = SegmentArray.from_polyline(trajectory.coords())

    def distance(self, coord) -> float:
        if self._segments is not None and len(self._segments) > 0:
            return self._segments.min_distance_to(coord)
        return _distance_to_trajectory(coord, self._trajectory)


def information_loss(
    original: TrajectoryDataset,
    anonymized: TrajectoryDataset,
    cap: float = INF_DISTANCE_CAP,
    sample_stride: int = 1,
) -> float:
    """INF: mean capped point displacement, in [0, 1].

    Trajectories are paired positionally. ``sample_stride`` evaluates
    every k-th original point, an unbiased speed-up for long inputs.
    """
    if len(original) != len(anonymized):
        raise ValueError("datasets must contain the same number of objects")
    if cap <= 0:
        raise ValueError("cap must be positive")
    total = 0.0
    count = 0
    for to, ta in zip(original, anonymized, strict=True):
        oracle = _TrajectoryDistanceOracle(ta)
        for point in to.points[::sample_stride]:
            d = oracle.distance(point.coord)
            total += min(d / cap, 1.0)
            count += 1
    return total / count if count else 0.0


# -- distribution divergences ----------------------------------------------------


def _jensen_shannon(p: Counter, q: Counter) -> float:
    """JS divergence normalised to [0, 1] (base-2 logarithm)."""
    total_p = sum(p.values())
    total_q = sum(q.values())
    if total_p == 0 or total_q == 0:
        return 1.0 if total_p != total_q else 0.0
    keys = set(p) | set(q)
    js = 0.0
    for key in keys:
        pp = p.get(key, 0) / total_p
        qq = q.get(key, 0) / total_q
        mm = (pp + qq) / 2.0
        if pp > 0:
            js += 0.5 * pp * math.log2(pp / mm)
        if qq > 0:
            js += 0.5 * qq * math.log2(qq / mm)
    return min(max(js, 0.0), 1.0)


def _diameter_histogram(dataset: TrajectoryDataset, bin_width: float) -> Counter:
    return Counter(
        int(t.diameter() // bin_width) for t in dataset if len(t) > 0
    )


def diameter_error(
    original: TrajectoryDataset,
    anonymized: TrajectoryDataset,
    bin_width: float = 1000.0,
) -> float:
    """DE: JS divergence between diameter distributions."""
    return _jensen_shannon(
        _diameter_histogram(original, bin_width),
        _diameter_histogram(anonymized, bin_width),
    )


def _trip_histogram(
    dataset: TrajectoryDataset, grid: int, trip_length: int
) -> Counter:
    """Distribution of (origin cell, destination cell) trip pairs.

    Trajectories are chopped into trips of ``trip_length`` samples, the
    standard decomposition for full-history taxi data.
    """
    try:
        bbox = dataset.bbox()
    except ValueError:
        return Counter()
    histogram: Counter = Counter()

    def cell(x: float, y: float) -> tuple[int, int]:
        cx = int((x - bbox.min_x) / max(bbox.width, 1e-9) * grid)
        cy = int((y - bbox.min_y) / max(bbox.height, 1e-9) * grid)
        return (min(max(cx, 0), grid - 1), min(max(cy, 0), grid - 1))

    for trajectory in dataset:
        points = trajectory.points
        for start in range(0, max(len(points) - trip_length, 0) + 1, trip_length):
            chunk = points[start : start + trip_length]
            if len(chunk) < 2:
                continue
            histogram[(cell(chunk[0].x, chunk[0].y), cell(chunk[-1].x, chunk[-1].y))] += 1
    return histogram


def trip_error(
    original: TrajectoryDataset,
    anonymized: TrajectoryDataset,
    grid: int = 6,
    trip_length: int = 50,
) -> float:
    """TE: JS divergence between trip (O, D) distributions."""
    return _jensen_shannon(
        _trip_histogram(original, grid, trip_length),
        _trip_histogram(anonymized, grid, trip_length),
    )


def frequent_pattern_f1(
    original: TrajectoryDataset,
    anonymized: TrajectoryDataset,
    n: int = 100,
    cell_size: float = 500.0,
) -> float:
    """FFP: F-measure between top-N frequent patterns of the two datasets."""
    patterns_o = set(top_patterns(original, n=n, cell_size=cell_size))
    patterns_a = set(top_patterns(anonymized, n=n, cell_size=cell_size))
    if not patterns_o and not patterns_a:
        return 1.0
    if not patterns_o or not patterns_a:
        return 0.0
    overlap = len(patterns_o & patterns_a)
    return 2.0 * overlap / (len(patterns_o) + len(patterns_a))
