"""Shared fixtures for the benchmark suite.

All benches run at the smoke scale so the full suite finishes in
minutes; the experiment modules under ``repro.experiments`` regenerate
the paper's tables/figures at the larger presets.
"""

import pytest

from repro.datagen.generator import generate_fleet
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def config():
    return ExperimentConfig.smoke()


@pytest.fixture(scope="session")
def fleet(config):
    return generate_fleet(config.fleet)
