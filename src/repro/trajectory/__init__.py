"""Trajectory data model, I/O, distances, and processing operations."""

from repro.trajectory.model import (
    LocationKey,
    Point,
    Trajectory,
    TrajectoryDataset,
)
from repro.trajectory.ops import (
    detect_dwells,
    resample,
    simplify,
    sliding_windows,
    split_trips,
)

__all__ = [
    "LocationKey",
    "Point",
    "Trajectory",
    "TrajectoryDataset",
    "detect_dwells",
    "resample",
    "simplify",
    "sliding_windows",
    "split_trips",
]
