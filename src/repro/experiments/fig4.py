"""Figure 4: impact of the privacy budget ε on PureG / PureL / GL.

Eight panels, each a metric-vs-ε series per model: LA_s, INF, DE, TE,
FFP, route-based F-score, route-based RMF, point-based Accuracy.
Invoke with::

    python -m repro.experiments.fig4 [smoke|default|large] [workers]
                                     [--dataset REF]

Each (ε, model) cell of the sweep is independent, so ``workers > 1``
fans the grid across a process pool (``repro.engine``); results are
identical to the serial sweep because every job reseeds from the
config. ``--dataset`` swaps the synthetic fleet for an ingested real
dataset (see ``docs/data.md``); the recovery panels are then skipped,
as real data carries no route ground truth.
"""

from __future__ import annotations

import sys

from repro.api import run as run_spec
from repro.engine.pool import parallel_map
from repro.experiments.config import (
    ExperimentConfig,
    load_experiment_input,
    parse_driver_args,
)
from repro.experiments.evaluate import evaluate_method
from repro.experiments.methods import our_model_specs

#: The paper sweeps ε over [0.1, 10].
DEFAULT_EPSILONS = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0)

#: The eight panels of Figure 4 (metric keys from evaluate_method).
PANELS = ("LAs", "INF", "DE", "TE", "FFP", "F-score", "RMF", "Accuracy")

MODELS = ("PureG", "PureL", "GL")


def _sweep_job(
    payload: tuple[ExperimentConfig, float, str]
) -> tuple[float, str, dict[str, float | None]]:
    """One (ε, model) cell; the job is self-contained (it derives its
    fleet from the config) so it can run in a worker process, with the
    per-process fleet memo avoiding repeated generation."""
    config, epsilon, model = payload
    inputs = load_experiment_input(config)
    swept = config.with_epsilon(epsilon)
    spec = our_model_specs(swept)[model]
    anonymized = run_spec(spec, inputs.dataset).dataset
    evaluation = evaluate_method(
        inputs.dataset,
        anonymized,
        inputs.fleet,
        swept,
        synthetic=False,
        with_recovery=inputs.fleet is not None,
    )
    return epsilon, model, evaluation.values


def run(
    config: ExperimentConfig | None = None,
    epsilons: tuple[float, ...] = DEFAULT_EPSILONS,
    verbose: bool = False,
    workers: int = 1,
) -> dict[str, dict[str, list[float | None]]]:
    """``{panel: {model: [value per ε]}}`` for the three models."""
    config = config or ExperimentConfig.default()
    jobs = [
        (config, epsilon, model) for epsilon in epsilons for model in MODELS
    ]
    outcomes = parallel_map(_sweep_job, jobs, workers=workers)
    series: dict[str, dict[str, list[float | None]]] = {
        panel: {model: [] for model in MODELS} for panel in PANELS
    }
    for epsilon, model, values in outcomes:
        for panel in PANELS:
            series[panel][model].append(values.get(panel))
        if verbose:
            print(f"  eps={epsilon:<5g} {model:<6s} done", file=sys.stderr)
    return series


def format_series(
    series: dict[str, dict[str, list[float | None]]],
    epsilons: tuple[float, ...] = DEFAULT_EPSILONS,
    charts: bool = False,
) -> str:
    lines = []
    for panel, models in series.items():
        lines.append(f"[{panel} vs eps]")
        lines.append(
            f"{'eps':<8s}" + "".join(f"{e:>8g}" for e in epsilons)
        )
        for model, values in models.items():
            cells = "".join(
                "     -  " if v is None else f"{v:8.3f}" for v in values
            )
            lines.append(f"{model:<8s}" + cells)
        if charts:
            from repro.experiments.charts import render_chart

            lines.append(
                render_chart(models, list(epsilons), title=f"{panel} vs eps")
            )
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    preset, config, workers = parse_driver_args(argv, "repro.experiments.fig4")
    epsilons = DEFAULT_EPSILONS if preset != "smoke" else (0.5, 1.0, 5.0)
    source = config.dataset or "synthetic"
    print(
        f"Figure 4 reproduction — preset={preset}, eps sweep={epsilons}, "
        f"workers={workers}, dataset={source}"
    )
    series = run(config, epsilons=epsilons, verbose=True, workers=workers)
    print(format_series(series, epsilons, charts=True))


if __name__ == "__main__":
    main()
