"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.charts import render_chart


class TestRenderChart:
    def test_basic_render(self):
        chart = render_chart(
            {"A": [0.1, 0.5, 0.9], "B": [0.9, 0.5, 0.1]},
            x_values=[1.0, 2.0, 3.0],
            title="demo",
        )
        assert "demo" in chart
        assert "o=A" in chart
        assert "x=B" in chart
        assert "o" in chart.splitlines()[2] or "o" in chart

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            render_chart({"A": [1.0]}, [0.0], width=2)
        with pytest.raises(ValueError):
            render_chart({"A": [1.0]}, [0.0], height=1)

    def test_none_values_skipped(self):
        chart = render_chart({"A": [None, 0.5, None]}, [1.0, 2.0, 3.0])
        assert "o" in chart

    def test_empty_series(self):
        chart = render_chart({"A": [None, None]}, [1.0, 2.0], title="void")
        assert "(no data)" in chart

    def test_constant_series_renders(self):
        chart = render_chart({"A": [2.0, 2.0, 2.0]}, [1.0, 2.0, 3.0])
        assert "o" in chart

    def test_log_scale_positive_only(self):
        chart = render_chart(
            {"fast": [0.01, 0.1], "slow": [1.0, 10.0]},
            [10.0, 20.0],
            log_y=True,
        )
        assert "o" in chart
        assert "x" in chart

    def test_log_scale_skips_non_positive(self):
        chart = render_chart({"A": [0.0, 1.0]}, [1.0, 2.0], log_y=True)
        assert "o" in chart  # only the positive point plotted

    def test_extremes_on_opposite_rows(self):
        """Max lands on the top row, min on the bottom row."""
        chart = render_chart(
            {"A": [0.0, 1.0]}, [1.0, 2.0], width=20, height=6
        )
        rows = [line for line in chart.splitlines() if "|" in line]
        assert "o" in rows[0]  # max at top
        assert "o" in rows[-1]  # min at bottom

    def test_x_axis_labels_present(self):
        chart = render_chart({"A": [1.0, 2.0]}, [0.5, 5.0])
        assert "0.5" in chart
        assert "5" in chart
