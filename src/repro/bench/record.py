"""The versioned benchmark record every bench run emits through.

A :class:`BenchRecord` is the unit the whole ``repro.bench`` layer
operates on: the bench suite (``benchmarks/conftest.py``) builds one
per session, :class:`~repro.bench.history.BenchHistory` appends them
to the JSONL store, and :mod:`repro.bench.shift` classifies a new
record against a baseline window of earlier same-scale records.

Two serialized shapes exist on purpose:

``to_dict`` / ``from_dict``
    The versioned history schema (``{"version": 1, "bench", "scale",
    "python", "metrics", "speedups", "provenance"}``) — what lives in
    ``BENCH_history.jsonl``, one compact sorted-key JSON object per
    line, validated on load so a corrupt store fails loudly.
``to_snapshot_dict`` / ``from_snapshot``
    The legacy flat ``BENCH_engine.json`` layout (metric groups at the
    top level) — still emitted so the README-visible numbers keep
    their shape, and accepted by ``repro bench record`` as the
    one-shot import path for pre-history snapshots.

Scale is a first-class field because timings from different input
sizes must never share a baseline: the smoke fleet legitimately shows
``wave_over_incremental < 1`` while paper scale shows ``1.4x``, so a
scale-blind store would poison every comparison. ``BenchScale.key``
is the history partition key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Mapping

__all__ = ["BenchRecord", "BenchScale", "RecordError", "RECORD_VERSION"]

#: Current history schema version; bump on incompatible layout changes.
RECORD_VERSION = 1

#: Top-level keys of the legacy flat snapshot that are not metric groups.
_SNAPSHOT_RESERVED = ("bench", "python", "scale", "speedups", "version")


class RecordError(ValueError):
    """A benchmark record (or serialized form of one) is malformed."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise RecordError(message)


@dataclass(frozen=True)
class BenchScale:
    """The input-size descriptor a record was measured at.

    Records are only ever compared within one scale ``key``; the flag
    ``paper_scale`` additionally marks the scale family the committed
    history tracks (``REPRO_BENCH_SCALE=paper`` runs).
    """

    n_objects: int
    points_per_trajectory: int
    signature_size: int
    paper_scale: bool = False

    @property
    def family(self) -> str:
        """``"paper"`` or ``"smoke"`` — the coarse scale class."""
        return "paper" if self.paper_scale else "smoke"

    @property
    def key(self) -> str:
        """The history partition key, e.g. ``"paper-500x300-m10"``."""
        return (
            f"{self.family}-{self.n_objects}x{self.points_per_trajectory}"
            f"-m{self.signature_size}"
        )

    def to_dict(self) -> dict:
        return {
            "n_objects": self.n_objects,
            "points_per_trajectory": self.points_per_trajectory,
            "signature_size": self.signature_size,
            "paper_scale": self.paper_scale,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BenchScale":
        _require(isinstance(payload, Mapping), "scale must be an object")
        for name in ("n_objects", "points_per_trajectory", "signature_size"):
            value = payload.get(name)
            _require(
                isinstance(value, int) and not isinstance(value, bool)
                and value > 0,
                f"scale.{name} must be a positive integer, got {value!r}",
            )
        paper = payload.get("paper_scale", False)
        _require(
            isinstance(paper, bool),
            f"scale.paper_scale must be a boolean, got {paper!r}",
        )
        return cls(
            n_objects=payload["n_objects"],
            points_per_trajectory=payload["points_per_trajectory"],
            signature_size=payload["signature_size"],
            paper_scale=paper,
        )


def _validate_group(group_name: str, group: Mapping) -> dict:
    _require(
        isinstance(group, Mapping),
        f"metric group {group_name!r} must be an object, got "
        f"{type(group).__name__}",
    )
    validated: dict = {}
    for key in sorted(group):
        value = group[key]
        _require(
            isinstance(key, str) and key,
            f"metric key in group {group_name!r} must be a non-empty "
            f"string, got {key!r}",
        )
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"{group_name}.{key} must be a number, got {value!r}",
        )
        _require(
            value >= 0,
            f"{group_name}.{key} must be non-negative, got {value!r}",
        )
        validated[key] = value
    return validated


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark session's measurements, schema-validated.

    ``metrics`` maps group name to ``{key: number}`` (groups mirror
    the bench modules: ``inter_modification``, ``local_stage``, ...);
    ``speedups`` holds the derived ratios; ``provenance`` carries
    free-form string metadata (source, timestamp, host) that never
    participates in comparisons.
    """

    bench: str
    scale: BenchScale
    python: str
    metrics: Mapping[str, Mapping[str, float]]
    speedups: Mapping[str, float] = field(default_factory=dict)
    provenance: Mapping[str, str] = field(default_factory=dict)
    version: int = RECORD_VERSION

    def __post_init__(self) -> None:
        _require(
            self.version == RECORD_VERSION,
            f"unsupported record version {self.version!r} "
            f"(this build reads version {RECORD_VERSION})",
        )
        _require(
            isinstance(self.bench, str) and self.bench,
            f"bench name must be a non-empty string, got {self.bench!r}",
        )
        _require(
            isinstance(self.python, str) and self.python,
            f"python version must be a non-empty string, got {self.python!r}",
        )
        _require(
            isinstance(self.metrics, Mapping) and self.metrics,
            "metrics must be a non-empty object of metric groups",
        )
        metrics = {
            name: _validate_group(name, group)
            for name, group in sorted(self.metrics.items())
        }
        object.__setattr__(self, "metrics", metrics)
        object.__setattr__(
            self, "speedups", _validate_group("speedups", self.speedups)
        )
        _require(
            isinstance(self.provenance, Mapping),
            "provenance must be an object",
        )
        for key in sorted(self.provenance):
            _require(
                isinstance(key, str) and isinstance(self.provenance[key], str),
                f"provenance entries must map strings to strings, got "
                f"{key!r}: {self.provenance[key]!r}",
            )
        object.__setattr__(self, "provenance", dict(self.provenance))

    # -- tracked keys -------------------------------------------------

    def tracked_keys(self) -> list[str]:
        """Dotted keys the regression gate watches, sorted.

        Wall-clock metrics (``<group>.<name>_s``) and every derived
        ``speedups.<name>`` ratio; auxiliary counters (``chunks``) and
        provenance never gate.
        """
        keys = [
            f"{group}.{key}"
            for group, entries in self.metrics.items()
            for key in entries
            if key.endswith("_s")
        ]
        keys.extend(f"speedups.{key}" for key in self.speedups)
        return sorted(keys)

    def value(self, dotted_key: str) -> float | None:
        """The value at ``"group.key"`` / ``"speedups.key"``, if any."""
        group, _, key = dotted_key.partition(".")
        if not key:
            return None
        if group == "speedups":
            return self.speedups.get(key)
        entries = self.metrics.get(group)
        if entries is None:
            return None
        return entries.get(key)

    # -- history (versioned) shape ------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "bench": self.bench,
            "scale": self.scale.to_dict(),
            "python": self.python,
            "metrics": {
                group: dict(entries)
                for group, entries in self.metrics.items()
            },
            "speedups": dict(self.speedups),
            "provenance": dict(self.provenance),
        }

    def to_jsonl(self) -> str:
        """One compact, sorted-key history line (no trailing newline).

        Deterministic for a given record, so record → line → load →
        line round-trips byte-equal.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BenchRecord":
        _require(
            isinstance(payload, Mapping), "record must be a JSON object"
        )
        version = payload.get("version")
        _require(
            version == RECORD_VERSION,
            f"unsupported record version {version!r} "
            f"(this build reads version {RECORD_VERSION})",
        )
        provenance = payload.get("provenance", {})
        return cls(
            bench=payload.get("bench", ""),
            scale=BenchScale.from_dict(payload.get("scale", {})),
            python=payload.get("python", ""),
            metrics=payload.get("metrics", {}),
            speedups=payload.get("speedups", {}),
            provenance=provenance,
        )

    @classmethod
    def from_jsonl(cls, line: str) -> "BenchRecord":
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RecordError(f"invalid JSON in history line: {exc}") from exc
        return cls.from_dict(payload)

    # -- legacy flat snapshot shape -----------------------------------

    def to_snapshot_dict(self) -> dict:
        """The flat ``BENCH_engine.json`` layout (groups at top level)."""
        payload: dict = {
            "bench": self.bench,
            "python": self.python,
            "scale": self.scale.to_dict(),
            "speedups": dict(self.speedups),
        }
        for group, entries in self.metrics.items():
            payload[group] = dict(entries)
        return payload

    def to_snapshot_json(self) -> str:
        return (
            json.dumps(self.to_snapshot_dict(), indent=2, sort_keys=True)
            + "\n"
        )

    @classmethod
    def from_snapshot(
        cls,
        payload: Mapping,
        provenance: Mapping[str, str] | None = None,
    ) -> "BenchRecord":
        """Parse the legacy flat layout (the pre-history snapshots).

        Every top-level object other than the reserved fields is a
        metric group; this is the ``repro bench record`` import path.
        """
        _require(
            isinstance(payload, Mapping), "snapshot must be a JSON object"
        )
        metrics = {
            key: value
            for key, value in payload.items()
            if key not in _SNAPSHOT_RESERVED
        }
        _require(
            bool(metrics),
            "snapshot contains no metric groups beyond "
            + ", ".join(_SNAPSHOT_RESERVED),
        )
        return cls(
            bench=payload.get("bench", ""),
            scale=BenchScale.from_dict(payload.get("scale", {})),
            python=payload.get("python", ""),
            metrics=metrics,
            speedups=payload.get("speedups", {}),
            provenance=provenance or {},
        )
