#!/usr/bin/env python
"""Privacy-preserving fleet data release, end to end.

Scenario: a taxi company wants to publish one week of fleet movement
for research. The pipeline below

1. loads the fleet (here: generated; swap in ``read_csv`` for real data),
2. anonymizes it with the GL model under a chosen privacy budget,
3. audits the release against the re-identification and recovery
   attacks from the paper plus the utility metrics, and
4. writes the sanitized CSV only if the audit passes the release bar.

Run with::

    python examples/fleet_release.py [output.csv]
"""

import sys
import tempfile
from pathlib import Path

from repro import FleetConfig, GL, generate_fleet
from repro.attacks.linkage import LinkageAttack
from repro.attacks.recovery import RecoveryAttack
from repro.metrics.recovery import score_recovery
from repro.metrics.utility import frequent_pattern_f1, information_loss
from repro.trajectory.io import write_csv

#: Release policy: block publication if more than a third of the fleet
#: can be re-identified or the pattern utility drops below 60 %.
MAX_LINKING_ACCURACY = 0.35
MIN_PATTERN_F1 = 0.6


def main() -> None:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(tempfile.gettempdir()) / "fleet_release.csv"
    )

    print("== 1. load fleet ==")
    fleet = generate_fleet(
        FleetConfig(n_objects=50, points_per_trajectory=150, rows=16, cols=16, seed=5)
    )
    print(fleet.dataset.stats())

    print("\n== 2. anonymize (GL, eps = 1.0) ==")
    anonymizer = GL(epsilon=1.0, signature_size=5, seed=11)
    private = anonymizer.anonymize(fleet.dataset)

    print("\n== 3. audit ==")
    attack = LinkageAttack(cell_size=250.0)
    la_spatial = attack.linking_accuracy(fleet.dataset, private, "spatial")
    la_seq = attack.linking_accuracy(fleet.dataset, private, "sequential")
    print(f"re-identification: LA_s={la_spatial:.3f}  LA_sq={la_seq:.3f} "
          f"(bar: <= {MAX_LINKING_ACCURACY})")

    sample = private.subset(12)
    recovery = RecoveryAttack(fleet.network).run(sample)
    rec = score_recovery(
        fleet.network, fleet.dataset.subset(12), fleet.routes, recovery
    )
    print(f"recovery attack:  route-F={rec.f_score:.3f}  RMF={rec.rmf:.3f}")

    inf = information_loss(fleet.dataset, private, sample_stride=2)
    ffp = frequent_pattern_f1(fleet.dataset, private)
    print(f"utility:          INF={inf:.3f}  FFP={ffp:.3f} "
          f"(bar: FFP >= {MIN_PATTERN_F1})")

    print("\n== 4. release decision ==")
    if la_spatial > MAX_LINKING_ACCURACY:
        print("BLOCKED: linking accuracy above the release bar; "
              "lower epsilon or raise the signature size.")
        return
    if ffp < MIN_PATTERN_F1:
        print("BLOCKED: pattern utility below the bar; raise epsilon.")
        return
    write_csv(private, output)
    print(f"released {len(private)} trajectories "
          f"({private.total_points()} points) -> {output}")


if __name__ == "__main__":
    main()
